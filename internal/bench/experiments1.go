package bench

import (
	"fmt"
	"sync"
	"time"

	"prever/internal/constraint"
	"prever/internal/core"
	"prever/internal/he"
	"prever/internal/ledger"
	"prever/internal/mempool"
	"prever/internal/mpc"
	"prever/internal/netsim"
	"prever/internal/paxos"
	"prever/internal/pbft"
	"prever/internal/store"
	"prever/internal/token"
	"prever/internal/workload"

	chainpkg "prever/internal/chain"
)

// E1YCSB compares non-private, ledger-verified and HE-encrypted update
// processing on the YCSB core workloads (paper §6: "comparisons should be
// performed with respect to non-private solutions using standardized
// database benchmarks like TPC and YCSB").
func E1YCSB(scale Scale) (*Table, error) {
	records, ops, encOps := 1000, 2000, 50
	heBits := 512
	if scale == Full {
		records, ops, encOps = 10000, 20000, 500
		heBits = 1024
	}
	t := &Table{
		ID:     "E1",
		Title:  "YCSB A-F: plain vs ledger-verified vs HE-encrypted",
		Notes:  fmt.Sprintf("%d records; %d ops (plain/ledger), %d ops (encrypted, %d-bit Paillier)", records, ops, encOps, heBits),
		Header: []string{"workload", "backend", "ops", "elapsed", "ops/s"},
	}
	key, err := he.GenerateKey(heBits, nil)
	if err != nil {
		return nil, err
	}
	for _, wl := range workload.AllYCSB {
		wlOps := ops
		if wl == workload.YCSBE {
			// Scans are O(records) in this store; keep E's runtime sane.
			wlOps = ops / 10
		}
		// Plain KV.
		if err := e1Backend(t, wl, "plain", records, wlOps, func(kv *store.KV, l *ledger.Ledger, op workload.Op) error {
			return e1ApplyPlain(kv, op)
		}); err != nil {
			return nil, err
		}
		// Ledger-verified.
		if err := e1Backend(t, wl, "ledger", records, wlOps, func(kv *store.KV, l *ledger.Ledger, op workload.Op) error {
			return e1ApplyLedger(l, op)
		}); err != nil {
			return nil, err
		}
		// HE-encrypted (writes encrypt, reads decrypt).
		if err := e1Backend(t, wl, "encrypted", records, encOps, func(kv *store.KV, l *ledger.Ledger, op workload.Op) error {
			return e1ApplyEncrypted(kv, key, op)
		}); err != nil {
			return nil, err
		}
	}
	return t, nil
}

func e1Backend(t *Table, wl workload.YCSBWorkload, name string, records, ops int,
	apply func(*store.KV, *ledger.Ledger, workload.Op) error) error {
	gen, err := workload.NewYCSB(workload.YCSBConfig{Workload: wl, RecordCount: records, Seed: 42})
	if err != nil {
		return err
	}
	kv := store.NewKV()
	l := ledger.New()
	val := make([]byte, 100)
	for i := 0; i < records; i++ {
		switch name {
		case "ledger":
			if _, err := l.Put(workload.Key(i), val, "load", ""); err != nil {
				return err
			}
		default:
			kv.Put(workload.Key(i), val)
		}
	}
	opList := gen.Generate(ops)
	start := time.Now()
	for _, op := range opList {
		if err := apply(kv, l, op); err != nil {
			return err
		}
	}
	elapsed := time.Since(start)
	t.AddRow(string(wl), name, fmt.Sprint(ops), elapsed.Round(time.Millisecond).String(), opsRate(ops, elapsed))
	return nil
}

func e1ApplyPlain(kv *store.KV, op workload.Op) error {
	switch op.Type {
	case workload.OpRead:
		_, err := kv.Get(op.Key)
		if err == store.ErrNotFound {
			return nil
		}
		return err
	case workload.OpUpdate, workload.OpInsert:
		kv.Put(op.Key, op.Value)
		return nil
	case workload.OpScan:
		n := 0
		kv.Snapshot().Range(func(k string, _ []byte) bool {
			if k < op.Key {
				return true
			}
			n++
			return n < op.ScanLen
		})
		return nil
	case workload.OpReadModifyWrite:
		v, err := kv.Get(op.Key)
		if err != nil && err != store.ErrNotFound {
			return err
		}
		if len(v) > 0 {
			v[0]++
		} else {
			v = op.Value
		}
		kv.Put(op.Key, v)
		return nil
	}
	return nil
}

func e1ApplyLedger(l *ledger.Ledger, op workload.Op) error {
	switch op.Type {
	case workload.OpRead:
		_, err := l.Get(op.Key)
		if err == store.ErrNotFound {
			return nil
		}
		return err
	case workload.OpUpdate, workload.OpInsert:
		_, err := l.Put(op.Key, op.Value, "bench", "")
		return err
	case workload.OpScan:
		n := 0
		l.State().Range(func(k string, _ []byte) bool {
			if k < op.Key {
				return true
			}
			n++
			return n < op.ScanLen
		})
		return nil
	case workload.OpReadModifyWrite:
		v, err := l.Get(op.Key)
		if err != nil && err != store.ErrNotFound {
			return err
		}
		if len(v) > 0 {
			v[0]++
		} else {
			v = op.Value
		}
		_, err = l.Put(op.Key, v, "bench", "")
		return err
	}
	return nil
}

func e1ApplyEncrypted(kv *store.KV, key *he.PrivateKey, op workload.Op) error {
	switch op.Type {
	case workload.OpRead, workload.OpScan:
		raw, err := kv.Get(op.Key)
		if err == store.ErrNotFound {
			return nil
		}
		if err != nil {
			return err
		}
		// Decrypt to model a client-side read of an encrypted row.
		var c he.Ciphertext
		c.C = bigFromBytes(raw)
		if c.C.Sign() > 0 && c.C.Cmp(key.N2) < 0 {
			if _, err := key.Decrypt(&c); err != nil {
				return err
			}
		}
		return nil
	case workload.OpUpdate, workload.OpInsert, workload.OpReadModifyWrite:
		ct, err := key.EncryptInt(int64(len(op.Value)), nil)
		if err != nil {
			return err
		}
		kv.Put(op.Key, ct.C.Bytes())
		return nil
	}
	return nil
}

// E2Verify measures update verification by constraint type and privacy
// mode (RC1): how much the privacy machinery costs per verified update.
func E2Verify(scale Scale) (*Table, error) {
	n := 30
	heBits := 512
	if scale == Full {
		n = 200
		heBits = 1024
	}
	t := &Table{
		ID:     "E2",
		Title:  "Update verification latency by constraint type and privacy mode",
		Notes:  fmt.Sprintf("%d updates per cell; Paillier %d-bit; ZK over the small test group; percentiles from each engine's latency histogram", n, heBits),
		Header: []string{"constraint", "mode", "per-update", "p50", "p95", "p99"},
	}
	type c struct {
		name, source string
	}
	constraints := []c{
		{"equality", "u.kind = 'vaccinated'"},
		{"bound", "u.hours <= 40"},
		{"aggregate-bound", "SUM(tasks.hours WHERE tasks.worker = u.worker) + u.hours <= 40000000"},
		{"window-bound", "SUM(tasks.hours WHERE tasks.worker = u.worker WITHIN 168 HOURS OF u.ts) + u.hours <= 40000000"},
	}
	base := time.Date(2022, 3, 29, 0, 0, 0, 0, time.UTC)
	schema := store.MustSchema(
		store.Column{Name: "worker", Kind: store.KindString},
		store.Column{Name: "hours", Kind: store.KindInt},
		store.Column{Name: "kind", Kind: store.KindString},
		store.Column{Name: "ts", Kind: store.KindTime},
	)
	for _, cc := range constraints {
		// Plaintext mode.
		mgr := core.NewPlainManager("e2", nil)
		mgr.AddTable(store.NewTable("tasks", schema))
		cons, err := core.NewConstraint(cc.name, cc.source, core.Regulation, core.Public, "bench")
		if err != nil {
			return nil, err
		}
		mgr.AddConstraint(cons)
		start := time.Now()
		for i := 0; i < n; i++ {
			u := core.Update{
				ID: fmt.Sprintf("u%d", i), Table: "tasks", Key: fmt.Sprintf("u%d", i),
				Row: store.Row{
					"worker": store.String_("w1"),
					"hours":  store.Int(1),
					"kind":   store.String_("vaccinated"),
					"ts":     store.Time(base.Add(time.Duration(i) * time.Minute)),
				},
				TS: base.Add(time.Duration(i) * time.Minute),
			}
			if _, err := mgr.Submit(u); err != nil {
				return nil, err
			}
		}
		t.AddRow(append([]string{cc.name, "plaintext", perOp(n, time.Since(start))}, latencyCells(mgr.Stats())...)...)

		// Encrypted (HE) mode: only linear bounds qualify.
		form, ok := constraint.CompileBound(constraint.MustParse(cc.source))
		if !ok {
			t.AddRow(append([]string{cc.name, "encrypted(HE)", "n/a (not a linear bound)"}, naLatencyCells()...)...)
			t.AddRow(append([]string{cc.name, "zk-proof", "n/a (not a linear bound)"}, naLatencyCells()...)...)
			continue
		}
		spec, err := core.DeriveBoundSpec(cc.name, form)
		if err != nil {
			t.AddRow(append([]string{cc.name, "encrypted(HE)", "n/a (" + err.Error() + ")"}, naLatencyCells()...)...)
		} else {
			helper, err := mpc.NewHelper(heBits)
			if err != nil {
				return nil, err
			}
			em, err := core.NewEncryptedManager(cc.name, helper.PublicKey(), helper, spec)
			if err != nil {
				return nil, err
			}
			start = time.Now()
			for i := 0; i < n; i++ {
				ct, err := helper.PublicKey().EncryptInt(1, nil)
				if err != nil {
					return nil, err
				}
				u := core.EncryptedUpdate{
					ID: fmt.Sprintf("u%d", i), Group: "w1",
					TS:  base.Add(time.Duration(i) * time.Minute),
					Enc: map[string]*he.Ciphertext{"hours": ct},
				}
				if _, err := em.SubmitEncrypted(u); err != nil {
					return nil, err
				}
			}
			t.AddRow(append([]string{cc.name, "encrypted(HE)", perOp(n, time.Since(start))}, latencyCells(em.Stats())...)...)
		}

		// ZK mode: cumulative bounds only (windows need plaintext expiry).
		zkN := n / 3
		if zkN < 5 {
			zkN = 5
		}
		setupOK := spec != nil && spec.Agg == nil || cc.name == "aggregate-bound"
		if !setupOK {
			t.AddRow(append([]string{cc.name, "zk-proof", "n/a (windowed)"}, naLatencyCells()...)...)
			continue
		}
		zkBench(t, cc.name, zkN)
		zkBenchBatched(t, cc.name, zkN)
	}
	return t, nil
}

func zkBench(t *Table, name string, n int) {
	fail := func(err error) {
		t.AddRow(append([]string{name, "zk-proof", "error: " + err.Error()}, naLatencyCells()...)...)
	}
	params := zkParams()
	m, err := core.NewZKBoundManager(name, params, int64(n)*2)
	if err != nil {
		fail(err)
		return
	}
	owner := core.NewZKOwner(params, name, int64(n)*2)
	start := time.Now()
	for i := 0; i < n; i++ {
		u, err := owner.ProduceUpdate(fmt.Sprintf("u%d", i), "w1", "w1", 1)
		if err != nil {
			fail(err)
			return
		}
		if _, err := m.SubmitZK(u); err != nil {
			fail(err)
			return
		}
	}
	t.AddRow(append([]string{name, "zk-proof", perOp(n, time.Since(start))}, latencyCells(m.Stats())...)...)
}

// zkBenchBatched is zkBench over the amortized path: the owner's proofs
// are produced up front (proving cost excluded), then the whole chain is
// submitted as one batch so the manager verifies it with a single folded
// check per group (SubmitZKBatch → zk.VerifyBoundBatch).
func zkBenchBatched(t *Table, name string, n int) {
	fail := func(err error) {
		t.AddRow(append([]string{name, "zk-proof (batched)", "error: " + err.Error()}, naLatencyCells()...)...)
	}
	params := zkParams()
	m, err := core.NewZKBoundManager(name, params, int64(n)*2)
	if err != nil {
		fail(err)
		return
	}
	owner := core.NewZKOwner(params, name, int64(n)*2)
	us := make([]core.ZKUpdate, n)
	for i := range us {
		u, err := owner.ProduceUpdate(fmt.Sprintf("u%d", i), "w1", "w1", 1)
		if err != nil {
			fail(err)
			return
		}
		us[i] = u
	}
	start := time.Now()
	rs, err := m.SubmitZKBatch(us)
	if err != nil {
		fail(err)
		return
	}
	for _, r := range rs {
		if !r.Accepted {
			fail(fmt.Errorf("update %s rejected: %s", r.UpdateID, r.Reason))
			return
		}
	}
	t.AddRow(append([]string{name, "zk-proof (batched)", perOp(n, time.Since(start))}, latencyCells(m.Stats())...)...)
}

// E3Federated contrasts the two RC2 enforcement mechanisms — Separ-style
// tokens vs MPC — as the federation grows, quantifying the paper's claim
// that tokens are cheap but limited while MPC generalizes at a cost.
func E3Federated(scale Scale) (*Table, error) {
	tasks := 40
	rsaBits, heBits := 1024, 512
	sizes := []int{2, 4}
	if scale == Full {
		tasks = 200
		sizes = []int{2, 4, 8}
	}
	t := &Table{
		ID:     "E3",
		Title:  "Federated FLSA enforcement: tokens vs MPC vs non-private",
		Notes:  fmt.Sprintf("%d one-hour tasks; token authority RSA-%d; MPC helper Paillier-%d", tasks, rsaBits, heBits),
		Header: []string{"platforms", "mechanism", "per-task", "tasks/s"},
	}
	base := time.Date(2022, 3, 28, 0, 0, 0, 0, time.UTC)
	for _, nPlat := range sizes {
		platforms := make([]string, nPlat)
		for i := range platforms {
			platforms[i] = workload.PlatformID(i)
		}
		// Non-private baseline: a single shared counter check.
		{
			totals := map[string]int64{}
			start := time.Now()
			for i := 0; i < tasks; i++ {
				w := workload.WorkerID(i % 8)
				if totals[w]+1 <= 1<<40 {
					totals[w]++
				}
			}
			elapsed := time.Since(start)
			t.AddRow(fmt.Sprint(nPlat), "non-private", perOp(tasks, elapsed), opsRate(tasks, elapsed))
		}
		// Token-based.
		{
			auth, err := token.NewAuthority(rsaBits, nil)
			if err != nil {
				return nil, err
			}
			fed, err := core.NewTokenFederation("e3", auth.PublicKey(), "p", token.NewMemorySpentStore(), platforms)
			if err != nil {
				return nil, err
			}
			wallets := map[string]*token.Wallet{}
			for i := 0; i < 8; i++ {
				w := workload.WorkerID(i)
				wal, err := token.NewWallet(auth.PublicKey(), "p", tasks/4+4, nil)
				if err != nil {
					return nil, err
				}
				sigs, err := auth.IssueBudget(w, "p", wal.BlindedRequests(), 1<<30)
				if err != nil {
					return nil, err
				}
				if err := wal.Finalize(sigs); err != nil {
					return nil, err
				}
				wallets[w] = wal
			}
			start := time.Now()
			for i := 0; i < tasks; i++ {
				w := workload.WorkerID(i % 8)
				sub := core.TaskSubmission{
					ID: fmt.Sprintf("tk%d", i), Worker: w,
					Platform: platforms[i%nPlat], Hours: 1, TS: base,
				}
				if _, err := fed.SubmitTask(sub, wallets[w]); err != nil {
					return nil, err
				}
			}
			elapsed := time.Since(start)
			t.AddRow(fmt.Sprint(nPlat), "tokens", perOp(tasks, elapsed), opsRate(tasks, elapsed))
		}
		// MPC-based: exact (re-encrypting) and incremental (cached totals).
		for _, mode := range []string{"mpc", "mpc-incremental"} {
			helper, err := mpc.NewHelper(heBits)
			if err != nil {
				return nil, err
			}
			fed, err := core.NewMPCFederation("e3", helper.PublicKey(), helper, 1<<40, 168*time.Hour, platforms)
			if err != nil {
				return nil, err
			}
			if mode == "mpc-incremental" {
				fed.EnableIncremental()
				// Offline phase: enough randomness for every check and
				// accept (not part of the timed online path).
				if err := fed.PrecomputeRandomness(tasks * (nPlat + 2)); err != nil {
					return nil, err
				}
			}
			start := time.Now()
			for i := 0; i < tasks; i++ {
				sub := core.TaskSubmission{
					ID: fmt.Sprintf("mp%d", i), Worker: workload.WorkerID(i % 8),
					Platform: platforms[i%nPlat], Hours: 1, TS: base,
				}
				if _, err := fed.SubmitTask(sub); err != nil {
					return nil, err
				}
			}
			elapsed := time.Since(start)
			t.AddRow(fmt.Sprint(nPlat), mode, perOp(tasks, elapsed), opsRate(tasks, elapsed))
		}
	}
	return t, nil
}

// E4Consensus compares the integrity layer's ordering protocols: Paxos
// (crash-fault baseline), PBFT (Byzantine, batched and unbatched), and the
// SharPer-style sharded chain (paper §6: "the distributed solutions should
// be compared in terms of throughput and latency with standard distributed
// fault-tolerant protocols, e.g., Paxos and PBFT").
func E4Consensus(scale Scale) (*Table, error) {
	ops := 200
	if scale == Full {
		ops = 1000
	}
	t := &Table{
		ID:     "E4",
		Title:  "Replicated update log: Paxos vs PBFT vs sharded chain",
		Notes:  fmt.Sprintf("%d 64-byte commits per configuration over a 100µs one-way link; batched rows amortize that RTT across up to 64 ops per instance", ops),
		Header: []string{"protocol", "config", "n", "per-op", "ops/s"},
	}
	val := make([]byte, 64)
	// Every non-faulty configuration runs over the same LAN-like link: a
	// zero-latency network hides the per-instance round trips that
	// batching exists to amortize.
	lanCfg := netsim.Config{Latency: 100 * time.Microsecond}

	// Paxos n=3 and n=5.
	for _, n := range []int{3, 5} {
		net := netsim.New(lanCfg)
		ids := make([]string, n)
		for i := range ids {
			ids[i] = fmt.Sprintf("r%d", i)
		}
		var leader *paxos.Replica
		for _, id := range ids {
			r, err := paxos.NewReplica(net, id, ids, nil)
			if err != nil {
				net.Close()
				return nil, err
			}
			if leader == nil {
				leader = r
			}
		}
		if err := leader.BecomeLeader(10 * time.Second); err != nil {
			net.Close()
			return nil, err
		}
		start := time.Now()
		for i := 0; i < ops; i++ {
			if _, err := leader.Propose(val, 10*time.Second); err != nil {
				net.Close()
				return nil, err
			}
		}
		elapsed := time.Since(start)
		net.Close()
		t.AddRow("paxos", "single leader", fmt.Sprint(n), perOp(ops, elapsed), opsRate(ops, elapsed))
	}

	// Paxos batched: the mempool batcher drains up to 64 ops per consensus
	// instance and keeps 4 instances pipelined through the failover client
	// (eager slot assignment fixes log order at dispatch).
	{
		net := netsim.New(lanCfg)
		const n = 5
		ids := make([]string, n)
		for i := range ids {
			ids[i] = fmt.Sprintf("r%d", i)
		}
		var replicas []*paxos.Replica
		for _, id := range ids {
			r, err := paxos.NewReplica(net, id, ids, nil)
			if err != nil {
				net.Close()
				return nil, err
			}
			replicas = append(replicas, r)
		}
		if err := replicas[0].BecomeLeader(10 * time.Second); err != nil {
			net.Close()
			return nil, err
		}
		client, err := paxos.NewClient(net, replicas, paxos.ClientOptions{})
		if err != nil {
			net.Close()
			return nil, err
		}
		bops := 4 * ops
		elapsed, err := mempoolDrive(bops, client.StartBatch, func(p *paxos.Pending) error {
			_, err := p.Wait(10 * time.Second)
			return err
		})
		net.Close()
		if err != nil {
			return nil, err
		}
		t.AddRow("paxos", "batch=64 pipelined", fmt.Sprint(n), perOp(bops, elapsed), opsRate(bops, elapsed))
	}

	// PBFT f=1 (n=4) unbatched and batched, plus f=2 (n=7) unbatched.
	type pbftCfg struct {
		f, batch int
	}
	pbftCfgs := []pbftCfg{{1, 1}, {1, 16}, {2, 1}}
	for _, pc := range pbftCfgs {
		batch := pc.batch
		net := netsim.New(lanCfg)
		n := 3*pc.f + 1
		ids := make([]string, n)
		for i := range ids {
			ids[i] = fmt.Sprintf("p%d", i)
		}
		var primary *pbft.Replica
		for _, id := range ids {
			r, err := pbft.NewReplica(net, id, ids, pc.f, nil, pbft.Options{
				BatchSize:  batch,
				BatchDelay: 200 * time.Microsecond,
			})
			if err != nil {
				net.Close()
				return nil, err
			}
			if primary == nil {
				primary = r
			}
		}
		start := time.Now()
		if batch == 1 {
			for i := 0; i < ops; i++ {
				if err := primary.Submit("bench", uint64(i), val, 10*time.Second); err != nil {
					net.Close()
					return nil, err
				}
			}
		} else {
			// Concurrent submissions so batches actually fill.
			sem := make(chan struct{}, batch)
			errCh := make(chan error, ops)
			for i := 0; i < ops; i++ {
				sem <- struct{}{}
				go func(i int) {
					defer func() { <-sem }()
					errCh <- primary.Submit("bench", uint64(i), val, 10*time.Second)
				}(i)
			}
			for i := 0; i < ops; i++ {
				if err := <-errCh; err != nil {
					net.Close()
					return nil, err
				}
			}
		}
		elapsed := time.Since(start)
		net.Close()
		t.AddRow("pbft", fmt.Sprintf("batch=%d", batch), fmt.Sprint(n), perOp(ops, elapsed), opsRate(ops, elapsed))
	}

	// PBFT batched through the mempool: replica-side batching off, all
	// aggregation in the mempool batcher (batch 64, 4 pipelined requests
	// with eagerly assigned sequence numbers).
	{
		net := netsim.New(lanCfg)
		const f, n = 1, 4
		ids := make([]string, n)
		for i := range ids {
			ids[i] = fmt.Sprintf("p%d", i)
		}
		var replicas []*pbft.Replica
		for _, id := range ids {
			r, err := pbft.NewReplica(net, id, ids, f, nil, pbft.Options{})
			if err != nil {
				net.Close()
				return nil, err
			}
			replicas = append(replicas, r)
		}
		client, err := pbft.NewClient(net, replicas, "bench-mempool", pbft.ClientOptions{})
		if err != nil {
			net.Close()
			return nil, err
		}
		bops := 4 * ops
		elapsed, err := mempoolDrive(bops, client.StartBatch, func(p *pbft.Pending) error {
			return p.Wait(10 * time.Second)
		})
		net.Close()
		if err != nil {
			return nil, err
		}
		t.AddRow("pbft", "batch=64 pipelined", fmt.Sprint(n), perOp(bops, elapsed), opsRate(bops, elapsed))
	}

	// Faulty-network variants: duplicated and reordered delivery (fixed
	// seed), driven through the failover clients, with a follower crash
	// at the halfway mark and a restart (plus catch-up sync) at 3/4.
	faultyCfg := netsim.Config{
		DuplicateRate: 0.05,
		ReorderRate:   0.1,
		ReorderDelay:  time.Millisecond,
		Seed:          42,
	}
	{
		net := netsim.New(faultyCfg)
		const n = 5
		ids := make([]string, n)
		for i := range ids {
			ids[i] = fmt.Sprintf("r%d", i)
		}
		var replicas []*paxos.Replica
		for _, id := range ids {
			r, err := paxos.NewReplica(net, id, ids, nil)
			if err != nil {
				net.Close()
				return nil, err
			}
			replicas = append(replicas, r)
		}
		if err := replicas[0].BecomeLeader(10 * time.Second); err != nil {
			net.Close()
			return nil, err
		}
		client, err := paxos.NewClient(net, replicas, paxos.ClientOptions{})
		if err != nil {
			net.Close()
			return nil, err
		}
		follower := replicas[n-1]
		start := time.Now()
		for i := 0; i < ops; i++ {
			switch i {
			case ops / 2:
				if err := follower.Crash(); err != nil {
					net.Close()
					return nil, err
				}
			case ops * 3 / 4:
				if err := follower.Restart(); err != nil {
					net.Close()
					return nil, err
				}
			}
			if _, err := client.Propose(val, 10*time.Second); err != nil {
				net.Close()
				return nil, err
			}
		}
		elapsed := time.Since(start)
		net.Close()
		t.AddRow("paxos", "faulty link", fmt.Sprint(n), perOp(ops, elapsed), opsRate(ops, elapsed))
	}
	{
		net := netsim.New(faultyCfg)
		const f, n = 1, 4
		ids := make([]string, n)
		for i := range ids {
			ids[i] = fmt.Sprintf("p%d", i)
		}
		var replicas []*pbft.Replica
		for _, id := range ids {
			r, err := pbft.NewReplica(net, id, ids, f, nil, pbft.Options{})
			if err != nil {
				net.Close()
				return nil, err
			}
			replicas = append(replicas, r)
		}
		client, err := pbft.NewClient(net, replicas, "bench-faulty", pbft.ClientOptions{})
		if err != nil {
			net.Close()
			return nil, err
		}
		follower := replicas[n-1] // backup: the view-0 primary stays up
		start := time.Now()
		for i := 0; i < ops; i++ {
			switch i {
			case ops / 2:
				if err := follower.Crash(); err != nil {
					net.Close()
					return nil, err
				}
			case ops * 3 / 4:
				if err := follower.Restart(); err != nil {
					net.Close()
					return nil, err
				}
			}
			if err := client.Submit(val, 10*time.Second); err != nil {
				net.Close()
				return nil, err
			}
		}
		elapsed := time.Since(start)
		net.Close()
		t.AddRow("pbft", "faulty link", fmt.Sprint(n), perOp(ops, elapsed), opsRate(ops, elapsed))
	}

	// Sharded chain: 1 and 2 shards, all-local transactions, then 10%
	// cross-shard.
	for _, shards := range []int{1, 2} {
		net := netsim.New(lanCfg)
		var ss []*chainpkg.Shard
		for i := 0; i < shards; i++ {
			s, err := chainpkg.NewShard(net, chainpkg.ShardConfig{
				Name: fmt.Sprintf("sh%d", i), F: 1, Timeout: 10 * time.Second,
			})
			if err != nil {
				net.Close()
				return nil, err
			}
			ss = append(ss, s)
		}
		sharded, err := chainpkg.NewSharded(ss...)
		if err != nil {
			net.Close()
			return nil, err
		}
		start := time.Now()
		// Parallel submissions across shards (that is the point of sharding).
		errCh := make(chan error, ops)
		sem := make(chan struct{}, 2*shards)
		for i := 0; i < ops; i++ {
			sem <- struct{}{}
			go func(i int) {
				defer func() { <-sem }()
				errCh <- (<-sharded.SubmitAsync(chainpkg.Tx{Kind: chainpkg.TxPut, Key: fmt.Sprintf("k%d", i), Value: val})).Err
			}(i)
		}
		for i := 0; i < ops; i++ {
			if err := <-errCh; err != nil {
				net.Close()
				return nil, err
			}
		}
		elapsed := time.Since(start)
		t.AddRow("chain", "local tx", fmt.Sprintf("%d×4", shards), perOp(ops, elapsed), opsRate(ops, elapsed))
		if shards == 2 {
			crossOps := ops / 10
			start = time.Now()
			for i := 0; i < crossOps; i++ {
				writes := []chainpkg.Tx{
					{Kind: chainpkg.TxPut, Key: fmt.Sprintf("xa%d", i), Value: val},
					{Kind: chainpkg.TxPut, Key: fmt.Sprintf("xb%d", i), Value: val},
				}
				if err := sharded.SubmitCross(writes); err != nil {
					net.Close()
					return nil, err
				}
			}
			elapsed = time.Since(start)
			t.AddRow("chain", "cross-shard tx", "2×4", perOp(crossOps, elapsed), opsRate(crossOps, elapsed))
		}
		net.Close()
	}

	// Chain batch-first front end: SubmitBatch through the shard mempool,
	// batch 64, 4 pipelined PBFT requests.
	{
		net := netsim.New(lanCfg)
		s, err := chainpkg.NewShard(net, chainpkg.ShardConfig{
			Name: "bsh", F: 1, Timeout: 10 * time.Second,
			Mempool: mempool.Config{
				Cap:           8 * ops,
				BatchSize:     64,
				FlushInterval: 200 * time.Microsecond,
				MaxInFlight:   4,
			},
		})
		if err != nil {
			net.Close()
			return nil, err
		}
		bops := 4 * ops
		txs := make([]chainpkg.Tx, bops)
		for i := range txs {
			txs[i] = chainpkg.Tx{Kind: chainpkg.TxPut, Key: fmt.Sprintf("bk%d", i), Value: val}
		}
		start := time.Now()
		for i, res := range s.SubmitBatch(txs) {
			if res.Err != nil {
				_ = s.Close()
				net.Close()
				return nil, fmt.Errorf("E4 chain batched tx %d: %w", i, res.Err)
			}
		}
		elapsed := time.Since(start)
		_ = s.Close()
		net.Close()
		t.AddRow("chain", "batch=64 pipelined", "1×4", perOp(bops, elapsed), opsRate(bops, elapsed))
	}
	return t, nil
}

// mempoolDrive pushes n ops through a mempool batcher wired to a consensus
// client's pipelined batch API and returns the wall time until every op is
// acked. Shared by the paxos and pbft batched E4 rows: start launches one
// consensus instance for an encoded batch, wait blocks for its outcome.
func mempoolDrive[P any](n int, start func([][]byte) P, wait func(P) error) (time.Duration, error) {
	pool := mempool.NewPool(mempool.Config{
		Cap:           2 * n,
		Lanes:         8,
		BatchSize:     64,
		FlushInterval: 200 * time.Microsecond,
		MaxInFlight:   4,
	})
	batcher := mempool.NewBatcher(pool, func(ops [][]byte) func() error {
		p := start(ops)
		return func() error { return wait(p) }
	})
	defer func() {
		batcher.Stop()
		_ = pool.Close()
	}()
	val := make([]byte, 64)
	errCh := make(chan error, n)
	var wg sync.WaitGroup
	begin := time.Now()
	for i := 0; i < n; i++ {
		wg.Add(1)
		err := pool.Add(mempool.Op{
			ID:   fmt.Sprintf("e4-%d", i),
			Lane: fmt.Sprintf("lane-%d", i%8),
			Data: val,
		}, func(err error) {
			defer wg.Done()
			if err != nil {
				errCh <- err
			}
		})
		if err != nil {
			return 0, err
		}
	}
	wg.Wait()
	elapsed := time.Since(begin)
	close(errCh)
	for err := range errCh {
		if err != nil {
			return 0, fmt.Errorf("E4 batched op: %w", err)
		}
	}
	return elapsed, nil
}
