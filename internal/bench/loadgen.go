// Open-loop load generation against a PReVer server (wavelet-style
// local/remote benchmarking): a target request rate is offered on a
// fixed schedule regardless of how fast the server answers, so queueing
// delay shows up in the latency percentiles instead of silently slowing
// the generator down (coordinated omission). `prever-bench local` boots
// a server in-process and drives it over loopback HTTP; `prever-bench
// remote` drives any already-running server.
package bench

import (
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"prever/internal/api"
	"prever/internal/chain"
	"prever/internal/core"
	"prever/internal/netsim"
)

// LoadConfig shapes one open-loop run.
type LoadConfig struct {
	// Rate is the offered load in requests/second across all
	// connections. Zero means closed-loop: every connection submits as
	// fast as the server answers.
	Rate int
	// Conns is the number of concurrent client connections.
	Conns int
	// Duration is how long to offer load.
	Duration time.Duration
	// ValueBytes is the payload size per transaction.
	ValueBytes int
	// Keys is the key-space size; transactions cycle through it so the
	// server's mempool lanes see realistic key diversity.
	Keys int
}

func (c LoadConfig) withDefaults() LoadConfig {
	if c.Conns <= 0 {
		c.Conns = 4
	}
	if c.Duration <= 0 {
		c.Duration = 5 * time.Second
	}
	if c.ValueBytes <= 0 {
		c.ValueBytes = 64
	}
	if c.Keys <= 0 {
		c.Keys = 1024
	}
	return c
}

// LoadReport is the outcome of one open-loop run. Latency is measured
// from each request's SCHEDULED send time when a rate is set (so time a
// request spent waiting behind a saturated server counts), and from the
// actual send time in closed-loop mode.
type LoadReport struct {
	TargetRate int           `json:"targetRate"` // 0 = closed loop
	Conns      int           `json:"conns"`
	Elapsed    time.Duration `json:"elapsedNanos"`

	Sent       int64 `json:"sent"`
	Committed  int64 `json:"committed"`
	Duplicates int64 `json:"duplicates"`
	Rejected   int64 `json:"rejected"` // admission control (chain.ErrPoolFull)
	Errors     int64 `json:"errors"`

	Latency core.LatencySummary `json:"-"`

	// ServerStats is the server's own unified /stats document after the
	// run — the same JSON-tagged chain.Stats shape local code gets from
	// Shard.Stats, so bench output and server observability agree.
	ServerStats api.StatsResponse `json:"serverStats"`
}

// AchievedRate is the committed throughput in requests/second.
func (r LoadReport) AchievedRate() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Committed) / r.Elapsed.Seconds()
}

// Row renders the report as one latency-under-load table row:
// target, achieved, committed, rejected, errors, p50, p95, p99, max.
func (r LoadReport) Row() []string {
	target := "max"
	if r.TargetRate > 0 {
		target = fmt.Sprintf("%d/s", r.TargetRate)
	}
	return []string{
		target,
		fmt.Sprintf("%.0f/s", r.AchievedRate()),
		fmt.Sprintf("%d", r.Committed),
		fmt.Sprintf("%d", r.Rejected+r.Errors),
		fmtDur(r.Latency.P50),
		fmtDur(r.Latency.P95),
		fmtDur(r.Latency.P99),
		fmtDur(r.Latency.Max),
	}
}

// loadHeader is the column set every latency-under-load table uses.
func loadHeader() []string {
	return []string{"offered", "achieved", "committed", "failed", "p50", "p95", "p99", "max"}
}

// Fprint renders the report as a one-row table.
func (r LoadReport) Fprint(w io.Writer) {
	t := &Table{
		ID:     "load",
		Title:  fmt.Sprintf("open-loop latency under load (%d conns, %s)", r.Conns, r.Elapsed.Round(time.Millisecond)),
		Header: loadHeader(),
	}
	t.AddRow(r.Row()...)
	t.Fprint(w)
}

// RunOpenLoad offers cfg.Rate requests/second of single-key puts to the
// server at base for cfg.Duration and reports what came back. The
// generator fails fast if the server does not answer /health.
func RunOpenLoad(base string, cfg LoadConfig) (LoadReport, error) {
	cfg = cfg.withDefaults()
	probe := api.NewClient(base)
	if _, err := probe.Health(); err != nil {
		return LoadReport{}, fmt.Errorf("bench: server not healthy: %w", err)
	}

	rec := core.NewLatencyRecorder()
	var sent, committed, dups, rejected, errCount atomic.Int64
	var next atomic.Int64
	var interval time.Duration
	if cfg.Rate > 0 {
		interval = time.Second / time.Duration(cfg.Rate)
	}
	value := make([]byte, cfg.ValueBytes)
	for i := range value {
		value[i] = byte('a' + i%26)
	}

	start := time.Now()
	deadline := start.Add(cfg.Duration)
	var wg sync.WaitGroup
	for c := 0; c < cfg.Conns; c++ {
		client := api.NewClient(base)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				idx := next.Add(1) - 1
				sched := time.Now()
				if interval > 0 {
					// Open loop: request idx is due at start+idx*interval,
					// whether or not the server kept up. A late worker
					// sends immediately and the backlog time lands in the
					// measured latency.
					sched = start.Add(time.Duration(idx) * interval)
					if sched.After(deadline) {
						return
					}
					if wait := time.Until(sched); wait > 0 {
						time.Sleep(wait)
					}
				} else if sched.After(deadline) {
					return
				}
				tx := api.Tx{
					Kind:  api.KindPut,
					Key:   fmt.Sprintf("load/%d", idx%int64(cfg.Keys)),
					Value: value,
				}
				sent.Add(1)
				_, err := client.Submit(tx)
				rec.Record(time.Since(sched))
				switch {
				case err == nil:
					committed.Add(1)
				case errors.Is(err, chain.ErrDuplicate):
					dups.Add(1)
				case errors.Is(err, chain.ErrPoolFull):
					rejected.Add(1)
				default:
					errCount.Add(1)
				}
			}
		}()
	}
	wg.Wait()

	report := LoadReport{
		TargetRate: cfg.Rate,
		Conns:      cfg.Conns,
		Elapsed:    time.Since(start),
		Sent:       sent.Load(),
		Committed:  committed.Load(),
		Duplicates: dups.Load(),
		Rejected:   rejected.Load(),
		Errors:     errCount.Load(),
		Latency:    rec.Summary(),
	}
	stats, err := probe.Stats()
	if err != nil {
		return report, fmt.Errorf("bench: fetching /stats after run: %w", err)
	}
	report.ServerStats = stats
	return report, nil
}

// StartLocalServer boots a complete in-process PReVer server — netsim
// network, `shards` PBFT shards of 3f+1 peers, the HTTP API — on an
// ephemeral loopback port and returns its base URL and a stop function.
// `prever-bench local`, the E9 experiment, and tests use it to measure
// the full wire stack without managing a second process.
func StartLocalServer(shards, f int, timeout time.Duration) (string, func(), error) {
	if shards <= 0 {
		shards = 1
	}
	if f <= 0 {
		f = 1
	}
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	simnet := netsim.New(netsim.Config{})
	var ss []*chain.Shard
	for i := 0; i < shards; i++ {
		s, err := chain.NewShard(simnet, chain.ShardConfig{
			Name:    fmt.Sprintf("shard%d", i),
			F:       f,
			Timeout: timeout,
		})
		if err != nil {
			simnet.Close()
			return "", nil, err
		}
		ss = append(ss, s)
	}
	sharded, err := chain.NewSharded(ss...)
	if err != nil {
		simnet.Close()
		return "", nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		_ = sharded.Close()
		simnet.Close()
		return "", nil, err
	}
	hs := &http.Server{Handler: api.NewServer(sharded).Handler()}
	go func() { _ = hs.Serve(ln) }()
	stop := func() {
		_ = hs.Close()
		_ = sharded.Close()
		simnet.Close()
	}
	return "http://" + ln.Addr().String(), stop, nil
}

// E9OpenLoad is the latency-under-load experiment: boot an in-process
// server, then step the offered rate and record how the commit latency
// distribution degrades as the offered load approaches the consensus
// pipeline's capacity (EXPERIMENTS.md E9).
func E9OpenLoad(scale Scale) (*Table, error) {
	rates := []int{200, 500, 1000}
	dur := time.Second
	conns := 4
	if scale == Full {
		rates = []int{500, 1000, 2000, 4000}
		dur = 3 * time.Second
		conns = 8
	}
	base, stop, err := StartLocalServer(1, 1, 10*time.Second)
	if err != nil {
		return nil, err
	}
	defer stop()
	t := &Table{
		ID:     "E9",
		Title:  "Latency under open-loop load (HTTP API, 1 shard, f=1)",
		Notes:  fmt.Sprintf("%d conns, %s per rate step; latency from scheduled send time", conns, dur),
		Header: loadHeader(),
	}
	for _, rate := range rates {
		report, err := RunOpenLoad(base, LoadConfig{
			Rate:     rate,
			Conns:    conns,
			Duration: dur,
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(report.Row()...)
	}
	return t, nil
}
