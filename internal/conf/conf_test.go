package conf

import (
	"sync"
	"testing"
	"time"
)

func TestDefaultsAndReset(t *testing.T) {
	Reset()
	got := Snapshot()
	if got != Defaults() {
		t.Fatalf("fresh snapshot %+v != defaults %+v", got, Defaults())
	}
	SetBatchSize(7)
	if BatchSize() != 7 {
		t.Fatalf("BatchSize = %d, want 7", BatchSize())
	}
	Reset()
	if BatchSize() != Defaults().BatchSize {
		t.Fatalf("Reset did not restore batch size")
	}
}

func TestSettersAreSnapshotConsistent(t *testing.T) {
	Reset()
	defer Reset()
	// A snapshot taken before an update never shows the new values.
	before := Snapshot()
	Update(func(c *Config) {
		c.BatchSize = 128
		c.MaxInFlight = 9
	})
	if before.BatchSize != Defaults().BatchSize {
		t.Fatalf("held snapshot mutated: %+v", before)
	}
	after := Snapshot()
	if after.BatchSize != 128 || after.MaxInFlight != 9 {
		t.Fatalf("update not visible: %+v", after)
	}
}

func TestSanitizeClampsNonsense(t *testing.T) {
	defer Reset()
	Set(Config{BatchSize: -1, FlushInterval: -time.Second, MaxInFlight: 0, MempoolCap: -5, Lanes: 0})
	c := Snapshot()
	if c.BatchSize < 1 || c.MaxInFlight < 1 || c.MempoolCap < 1 || c.Lanes < 1 || c.FlushInterval < 0 || c.DedupTTL <= 0 {
		t.Fatalf("sanitize failed: %+v", c)
	}
}

func TestConcurrentUpdatesLoseNothing(t *testing.T) {
	defer Reset()
	Reset()
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			SetBatchSize(100)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			SetLanes(16)
		}
	}()
	wg.Wait()
	c := Snapshot()
	if c.BatchSize != 100 || c.Lanes != 16 {
		t.Fatalf("concurrent single-field updates interfered: %+v", c)
	}
}
