// Package conf centralizes the runtime-tunable consensus/batching knobs
// (wavelet's conf/conf.go pattern): one immutable snapshot struct behind
// an atomic pointer. Getters read the current snapshot — every field a
// caller reads through one Snapshot() call is from the same generation —
// and setters install a fresh copy (copy-on-write), so a bench sweep or a
// live server can retune batch sizes, flush intervals and queue caps
// without rebuilds and without readers ever seeing a half-updated config.
//
// Consumers: internal/mempool (batch size, flush interval, in-flight cap,
// pool cap, lane count), chain.Shard (its mempool defaults), and
// cmd/prever-bench (flags map straight onto Set*).
package conf

import (
	"sync"
	"sync/atomic"
	"time"
)

// Config is one snapshot of every runtime knob.
type Config struct {
	// BatchSize is the maximum number of operations the mempool batcher
	// drains into one consensus instance.
	BatchSize int
	// FlushInterval is how long the batcher waits for a partial batch to
	// fill before proposing it anyway. Zero proposes immediately.
	FlushInterval time.Duration
	// MaxInFlight is how many batched consensus instances may be
	// pipelined concurrently (slots/sequence numbers assigned eagerly,
	// applied in order).
	MaxInFlight int
	// MempoolCap is the admission-control bound on unresolved mempool
	// operations (queued + in flight); additions beyond it are rejected.
	MempoolCap int
	// Lanes is the number of key-hashed mempool lanes; operations with
	// the same lane key keep their submission order through batching.
	Lanes int
	// DedupTTL is how long the mempool remembers executed operation IDs
	// for duplicate suppression (retried ops inside the window are acked,
	// not re-proposed). Entries survive between TTL and 2×TTL.
	DedupTTL time.Duration
	// MaxTxBytes bounds one encoded transaction on the submit path;
	// larger submissions fail with chain.ErrTxTooLarge (HTTP 413 on the
	// wire) instead of bloating consensus batches.
	MaxTxBytes int
	// SnapshotEvery is the executed-sequence cadence between durable
	// consensus snapshots (WAL compaction points) when a shard runs with
	// a data directory.
	SnapshotEvery uint64
	// WALSegmentBytes is the WAL segment rotation threshold for durable
	// replicas.
	WALSegmentBytes int64
}

// Defaults is the configuration the system boots with.
func Defaults() Config {
	return Config{
		BatchSize:       64,
		FlushInterval:   500 * time.Microsecond,
		MaxInFlight:     4,
		MempoolCap:      4096,
		Lanes:           8,
		DedupTTL:        time.Minute,
		MaxTxBytes:      1 << 20,
		SnapshotEvery:   256,
		WALSegmentBytes: 4 << 20,
	}
}

// sanitize clamps a config to usable values so a zeroed or negative knob
// can never wedge the batcher.
func (c *Config) sanitize() {
	if c.BatchSize < 1 {
		c.BatchSize = 1
	}
	if c.FlushInterval < 0 {
		c.FlushInterval = 0
	}
	if c.MaxInFlight < 1 {
		c.MaxInFlight = 1
	}
	if c.MempoolCap < 1 {
		c.MempoolCap = 1
	}
	if c.Lanes < 1 {
		c.Lanes = 1
	}
	if c.DedupTTL <= 0 {
		c.DedupTTL = time.Minute
	}
	if c.MaxTxBytes < 1 {
		c.MaxTxBytes = 1 << 20
	}
	if c.SnapshotEvery < 1 {
		c.SnapshotEvery = 256
	}
	if c.WALSegmentBytes < 1 {
		c.WALSegmentBytes = 4 << 20
	}
}

var (
	cur atomic.Pointer[Config]
	// setMu serializes writers so two concurrent Update calls cannot lose
	// each other's fields; readers never take it.
	setMu sync.Mutex
)

func init() {
	d := Defaults()
	cur.Store(&d)
}

// Snapshot returns the current configuration. All fields are from the
// same generation.
func Snapshot() Config { return *cur.Load() }

// Set installs c (sanitized) as the current configuration.
func Set(c Config) {
	setMu.Lock()
	defer setMu.Unlock()
	c.sanitize()
	cur.Store(&c)
}

// Update applies f to a copy of the current configuration and installs
// the result; concurrent Update calls are serialized, so no field write
// is lost.
func Update(f func(*Config)) {
	setMu.Lock()
	defer setMu.Unlock()
	c := *cur.Load()
	f(&c)
	c.sanitize()
	cur.Store(&c)
}

// Reset restores Defaults (test hygiene).
func Reset() { Set(Defaults()) }

// Individual getters and setters, for call sites that touch one knob.

// BatchSize returns the current batch size.
func BatchSize() int { return Snapshot().BatchSize }

// SetBatchSize updates the batch size.
func SetBatchSize(n int) { Update(func(c *Config) { c.BatchSize = n }) }

// FlushInterval returns the current partial-batch flush interval.
func FlushInterval() time.Duration { return Snapshot().FlushInterval }

// SetFlushInterval updates the partial-batch flush interval.
func SetFlushInterval(d time.Duration) { Update(func(c *Config) { c.FlushInterval = d }) }

// MaxInFlight returns the pipelining bound.
func MaxInFlight() int { return Snapshot().MaxInFlight }

// SetMaxInFlight updates the pipelining bound.
func SetMaxInFlight(n int) { Update(func(c *Config) { c.MaxInFlight = n }) }

// MempoolCap returns the mempool admission bound.
func MempoolCap() int { return Snapshot().MempoolCap }

// SetMempoolCap updates the mempool admission bound.
func SetMempoolCap(n int) { Update(func(c *Config) { c.MempoolCap = n }) }

// Lanes returns the mempool lane count.
func Lanes() int { return Snapshot().Lanes }

// SetLanes updates the mempool lane count.
func SetLanes(n int) { Update(func(c *Config) { c.Lanes = n }) }

// DedupTTL returns the executed-op dedup window.
func DedupTTL() time.Duration { return Snapshot().DedupTTL }

// SetDedupTTL updates the executed-op dedup window.
func SetDedupTTL(d time.Duration) { Update(func(c *Config) { c.DedupTTL = d }) }

// MaxTxBytes returns the encoded-transaction size bound.
func MaxTxBytes() int { return Snapshot().MaxTxBytes }

// SetMaxTxBytes updates the encoded-transaction size bound.
func SetMaxTxBytes(n int) { Update(func(c *Config) { c.MaxTxBytes = n }) }

// SnapshotEvery returns the durable-snapshot cadence.
func SnapshotEvery() uint64 { return Snapshot().SnapshotEvery }

// SetSnapshotEvery updates the durable-snapshot cadence.
func SetSnapshotEvery(n uint64) { Update(func(c *Config) { c.SnapshotEvery = n }) }

// WALSegmentBytes returns the WAL segment rotation threshold.
func WALSegmentBytes() int64 { return Snapshot().WALSegmentBytes }

// SetWALSegmentBytes updates the WAL segment rotation threshold.
func SetWALSegmentBytes(n int64) { Update(func(c *Config) { c.WALSegmentBytes = n }) }
