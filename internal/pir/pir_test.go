package pir

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"
)

func fillDB(t testing.TB, n, blockSize int) *Database {
	t.Helper()
	db, err := NewDatabase(blockSize)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := db.Update(i, []byte(fmt.Sprintf("row-%04d", i))); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func TestServerValidation(t *testing.T) {
	if _, err := NewServer(0); err == nil {
		t.Fatal("zero block size accepted")
	}
	s, _ := NewServer(8)
	if err := s.SetBlock(-1, nil); err == nil {
		t.Fatal("negative index accepted")
	}
	if err := s.SetBlock(0, []byte("123456789")); err == nil {
		t.Fatal("oversized block accepted")
	}
	if _, err := s.Block(0); err == nil {
		t.Fatal("read of absent block accepted")
	}
}

func TestSetBlockGrowsAndPads(t *testing.T) {
	s, _ := NewServer(8)
	if err := s.SetBlock(3, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if s.Size() != 4 {
		t.Fatalf("size = %d, want 4", s.Size())
	}
	b, _ := s.Block(3)
	want := append([]byte("x"), make([]byte, 7)...)
	if !bytes.Equal(b, want) {
		t.Fatalf("block = %q", b)
	}
	b2, _ := s.Block(0)
	if !bytes.Equal(b2, make([]byte, 8)) {
		t.Fatal("implicit blocks should be zero")
	}
}

func TestPrivateReadAllIndices(t *testing.T) {
	const n = 37 // deliberately not a multiple of 8
	db := fillDB(t, n, 16)
	for i := 0; i < n; i++ {
		got, err := db.PrivateRead(i, nil)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		want := fmt.Sprintf("row-%04d", i)
		if string(bytes.TrimRight(got, "\x00")) != want {
			t.Fatalf("read %d = %q, want %q", i, got, want)
		}
	}
}

func TestQueriesDifferOnlyAtTargetBit(t *testing.T) {
	q, err := NewQuery(64, 17, nil)
	if err != nil {
		t.Fatal(err)
	}
	diffs := 0
	for i := 0; i < 64; i++ {
		if bitSet(q.Q0, i) != bitSet(q.Q1, i) {
			diffs++
			if i != 17 {
				t.Fatalf("queries differ at %d, not the target", i)
			}
		}
	}
	if diffs != 1 {
		t.Fatalf("queries differ in %d positions", diffs)
	}
}

func TestQueryIsRandomized(t *testing.T) {
	a, _ := NewQuery(128, 5, nil)
	b, _ := NewQuery(128, 5, nil)
	if bytes.Equal(a.Q0, b.Q0) {
		t.Fatal("two queries for the same index are identical — servers could correlate")
	}
}

func TestQueryValidation(t *testing.T) {
	if _, err := NewQuery(10, 10, nil); err == nil {
		t.Fatal("out-of-range index accepted")
	}
	if _, err := NewQuery(10, -1, nil); err == nil {
		t.Fatal("negative index accepted")
	}
}

func TestAnswerValidatesQueryShape(t *testing.T) {
	db := fillDB(t, 16, 8)
	s0, _ := db.Servers()
	if _, err := s0.Answer(make([]byte, 1)); err == nil {
		t.Fatal("short query accepted")
	}
}

func TestCombineValidatesLengths(t *testing.T) {
	if _, err := Combine([]byte{1, 2}, []byte{1}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestUpdateVisibleToPrivateReads(t *testing.T) {
	db := fillDB(t, 8, 16)
	if err := db.Update(3, []byte("updated!")); err != nil {
		t.Fatal(err)
	}
	got, err := db.PrivateRead(3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(bytes.TrimRight(got, "\x00")) != "updated!" {
		t.Fatalf("post-update read = %q", got)
	}
	if !db.Consistent() {
		t.Fatal("replicas inconsistent after update")
	}
}

func TestConsistencyDetectsDivergence(t *testing.T) {
	db := fillDB(t, 4, 8)
	s0, _ := db.Servers()
	s0.SetBlock(2, []byte("tamper"))
	if db.Consistent() {
		t.Fatal("tampered replica not detected")
	}
}

// Property: private reads return the correct block for random database
// sizes and indices.
func TestQuickPrivateRead(t *testing.T) {
	db := fillDB(t, 100, 16)
	f := func(raw uint16) bool {
		i := int(raw) % 100
		got, err := db.PrivateRead(i, nil)
		if err != nil {
			return false
		}
		return string(bytes.TrimRight(got, "\x00")) == fmt.Sprintf("row-%04d", i)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPrivateRead1k(b *testing.B)  { benchRead(b, 1024) }
func BenchmarkPrivateRead16k(b *testing.B) { benchRead(b, 16*1024) }

func benchRead(b *testing.B, n int) {
	db := fillDB(b, n, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.PrivateRead(i%n, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUpdate16k(b *testing.B) {
	db := fillDB(b, 16*1024, 64)
	data := []byte("updated-row-data")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := db.Update(i%(16*1024), data); err != nil {
			b.Fatal(err)
		}
	}
}
