// Package pir implements two-server information-theoretic private
// information retrieval (Chor–Goldreich–Kushilevitz–Sudan style) with
// update support. It is PReVer's substrate for Research Challenge 3:
// public data (e.g. the list of in-person conference participants) that
// clients must read — and the framework must verify constraints against —
// without revealing WHICH rows they touch.
//
// The database is replicated on two non-colluding servers. To fetch block
// i of n, the client sends a uniformly random subset q0 ⊆ [n] to server 0
// and q1 = q0 Δ {i} to server 1; each server returns the XOR of its
// selected blocks, and the client XORs the two answers. Each server's view
// is a uniformly random subset, independent of i.
//
// Updates are public-data writes: the owner updates both replicas.
// (Private reads over public, updatable data is exactly the RC3 setting.)
package pir

import (
	"bytes"
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"sync"
)

// Server is one PIR replica holding fixed-size blocks.
type Server struct {
	mu        sync.RWMutex
	blockSize int
	blocks    [][]byte
}

// NewServer creates a replica with the given block size.
func NewServer(blockSize int) (*Server, error) {
	if blockSize < 1 {
		return nil, fmt.Errorf("pir: invalid block size %d", blockSize)
	}
	return &Server{blockSize: blockSize}, nil
}

// BlockSize returns the fixed block size.
func (s *Server) BlockSize() int { return s.blockSize }

// Size returns the number of blocks.
func (s *Server) Size() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.blocks)
}

// SetBlock writes block i, growing the database with zero blocks as
// needed. Data longer than the block size is rejected; shorter data is
// zero-padded.
func (s *Server) SetBlock(i int, data []byte) error {
	if i < 0 {
		return fmt.Errorf("pir: negative block index %d", i)
	}
	if len(data) > s.blockSize {
		return fmt.Errorf("pir: data length %d exceeds block size %d", len(data), s.blockSize)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.blocks) <= i {
		s.blocks = append(s.blocks, make([]byte, s.blockSize))
	}
	blk := make([]byte, s.blockSize)
	copy(blk, data)
	s.blocks[i] = blk
	return nil
}

// Block returns a copy of block i (a public, non-private read).
func (s *Server) Block(i int) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if i < 0 || i >= len(s.blocks) {
		return nil, fmt.Errorf("pir: block %d out of range [0,%d)", i, len(s.blocks))
	}
	out := make([]byte, s.blockSize)
	copy(out, s.blocks[i])
	return out, nil
}

// Answer XORs together the blocks selected by the query bit-vector. The
// query must cover exactly the server's current size.
func (s *Server) Answer(query []byte) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if len(query) != bitvecLen(len(s.blocks)) {
		return nil, fmt.Errorf("pir: query covers %d bytes, database needs %d", len(query), bitvecLen(len(s.blocks)))
	}
	out := make([]byte, s.blockSize)
	for i := range s.blocks {
		if bitSet(query, i) {
			xorInto(out, s.blocks[i])
		}
	}
	return out, nil
}

func bitvecLen(n int) int { return (n + 7) / 8 }

func bitSet(v []byte, i int) bool { return v[i/8]&(1<<(uint(i)%8)) != 0 }

func flipBit(v []byte, i int) { v[i/8] ^= 1 << (uint(i) % 8) }

func xorInto(dst, src []byte) {
	for i := range dst {
		dst[i] ^= src[i]
	}
}

// Query is a pair of server queries for one private read.
type Query struct {
	Index int    // the private index (kept by the client)
	Q0    []byte // to server 0
	Q1    []byte // to server 1
}

// NewQuery builds a private query for block index i of an n-block
// database.
func NewQuery(n, i int, rng io.Reader) (Query, error) {
	if i < 0 || i >= n {
		return Query{}, fmt.Errorf("pir: index %d out of range [0,%d)", i, n)
	}
	if rng == nil {
		rng = rand.Reader
	}
	q0 := make([]byte, bitvecLen(n))
	if _, err := io.ReadFull(rng, q0); err != nil {
		return Query{}, err
	}
	// Zero bits beyond n so both servers see identically-shaped vectors.
	if n%8 != 0 {
		q0[len(q0)-1] &= byte(1<<(uint(n)%8)) - 1
	}
	q1 := make([]byte, len(q0))
	copy(q1, q0)
	flipBit(q1, i)
	return Query{Index: i, Q0: q0, Q1: q1}, nil
}

// Combine reconstructs the private block from the two server answers.
func Combine(a0, a1 []byte) ([]byte, error) {
	if len(a0) != len(a1) {
		return nil, errors.New("pir: answer length mismatch")
	}
	out := make([]byte, len(a0))
	copy(out, a0)
	xorInto(out, a1)
	return out, nil
}

// Database bundles the two replicas with a consistent update path: the
// convenience layer the PReVer public-data manager uses.
type Database struct {
	s0, s1 *Server
}

// NewDatabase creates a replicated PIR database.
func NewDatabase(blockSize int) (*Database, error) {
	s0, err := NewServer(blockSize)
	if err != nil {
		return nil, err
	}
	s1, _ := NewServer(blockSize)
	return &Database{s0: s0, s1: s1}, nil
}

// Servers exposes the replicas (e.g. to place them at distinct data
// managers).
func (d *Database) Servers() (*Server, *Server) { return d.s0, d.s1 }

// Size returns the number of blocks.
func (d *Database) Size() int { return d.s0.Size() }

// Update writes block i on both replicas.
func (d *Database) Update(i int, data []byte) error {
	if err := d.s0.SetBlock(i, data); err != nil {
		return err
	}
	return d.s1.SetBlock(i, data)
}

// PrivateRead fetches block i without either server learning i.
func (d *Database) PrivateRead(i int, rng io.Reader) ([]byte, error) {
	n := d.Size()
	q, err := NewQuery(n, i, rng)
	if err != nil {
		return nil, err
	}
	a0, err := d.s0.Answer(q.Q0)
	if err != nil {
		return nil, err
	}
	a1, err := d.s1.Answer(q.Q1)
	if err != nil {
		return nil, err
	}
	return Combine(a0, a1)
}

// Consistent audits that the two replicas hold identical data (an owner
// integrity check after updates).
func (d *Database) Consistent() bool {
	d.s0.mu.RLock()
	defer d.s0.mu.RUnlock()
	//lint:ignore lockorder the two replicas are locked in the fixed s0-before-s1 order everywhere; no reverse path exists
	d.s1.mu.RLock()
	defer d.s1.mu.RUnlock()
	if len(d.s0.blocks) != len(d.s1.blocks) {
		return false
	}
	for i := range d.s0.blocks {
		//lint:ignore consttime owner-side audit comparing the owner's own replicas; timing is not attacker-observable
		if !bytes.Equal(d.s0.blocks[i], d.s1.blocks[i]) {
			return false
		}
	}
	return true
}
