// Package commit implements Pedersen commitments over a Schnorr group:
// unconditionally hiding, computationally binding commitments with additive
// homomorphism. PReVer uses them wherever a participant must fix a private
// value (an update amount, a running aggregate) that is later reasoned
// about in zero knowledge (Research Challenge 1) or combined across
// distrustful parties (Research Challenge 2).
//
// A commitment to message m with randomness r is C = g^m · h^r mod p where
// h is a second generator with an unknown discrete log relative to g
// (derived by hashing into the group).
package commit

import (
	"io"
	"math/big"

	"prever/internal/ct"
	"prever/internal/group"
)

// Params holds the commitment parameters: the group and the two
// generators, with fixed-base precomputation tables for both (commitments
// and Σ-protocol proofs exponentiate g and h constantly).
type Params struct {
	Group *group.Group
	G     *big.Int
	H     *big.Int

	gBase *group.FixedBase
	hBase *group.FixedBase
	gInv  *big.Int
}

// NewParams derives commitment parameters from a group. The second
// generator is hash-derived so nobody knows log_g(h).
func NewParams(g *group.Group) *Params {
	h := g.DeriveElement("prever/commit/pedersen-h")
	return &Params{
		Group: g,
		G:     g.G,
		H:     h,
		gBase: g.NewFixedBase(g.G),
		hBase: g.NewFixedBase(h),
		gInv:  g.Inv(g.G),
	}
}

// ExpG computes G^e using the precomputed table.
func (p *Params) ExpG(e *big.Int) *big.Int { return p.gBase.Exp(e) }

// ExpH computes H^e using the precomputed table.
func (p *Params) ExpH(e *big.Int) *big.Int { return p.hBase.Exp(e) }

// GInv returns the cached inverse of G. The bit-proof statement C/g is
// formed once per bit verification; the cache turns that ModInverse into
// a single multiplication.
func (p *Params) GInv() *big.Int { return p.gInv }

// Commitment is a committed value: a single group element.
type Commitment struct {
	C *big.Int
}

// Bytes returns the canonical encoding (for transcripts).
func (c Commitment) Bytes() []byte { return c.C.Bytes() }

// Equal reports element equality. Constant-time: Verify routes commitment
// opening checks through here, and a short-circuiting compare would leak
// how many leading bytes of a forged opening matched.
func (c Commitment) Equal(o Commitment) bool { return ct.BigEqual(c.C, o.C) }

// Opening is the (message, randomness) pair that opens a commitment.
type Opening struct {
	M *big.Int
	R *big.Int
}

// Commit commits to message m with fresh randomness, returning the
// commitment and its opening. m may be negative; it is reduced mod q.
func (p *Params) Commit(m *big.Int, rng io.Reader) (Commitment, Opening, error) {
	r, err := p.Group.RandScalar(rng)
	if err != nil {
		return Commitment{}, Opening{}, err
	}
	return p.CommitWith(m, r), Opening{M: new(big.Int).Set(m), R: r}, nil
}

// CommitWith commits with caller-chosen randomness (used by the range
// prover, which needs correlated randomness across bit commitments).
func (p *Params) CommitWith(m, r *big.Int) Commitment {
	gm := p.ExpG(m)
	hr := p.ExpH(r)
	return Commitment{C: p.Group.Mul(gm, hr)}
}

// CommitInt is Commit for int64 messages.
func (p *Params) CommitInt(m int64, rng io.Reader) (Commitment, Opening, error) {
	return p.Commit(big.NewInt(m), rng)
}

// Verify checks that an opening matches a commitment.
func (p *Params) Verify(c Commitment, o Opening) bool {
	return p.CommitWith(o.M, o.R).Equal(c)
}

// Add homomorphically combines two commitments:
// Commit(m1, r1) * Commit(m2, r2) = Commit(m1+m2, r1+r2).
func (p *Params) Add(a, b Commitment) Commitment {
	return Commitment{C: p.Group.Mul(a.C, b.C)}
}

// AddOpenings combines openings to match Add.
func (p *Params) AddOpenings(a, b Opening) Opening {
	m := new(big.Int).Add(a.M, b.M)
	r := new(big.Int).Add(a.R, b.R)
	r.Mod(r, p.Group.Q)
	return Opening{M: m, R: r}
}

// ScalarMul computes Commit(m, r)^k = Commit(k·m, k·r).
func (p *Params) ScalarMul(a Commitment, k *big.Int) Commitment {
	return Commitment{C: p.Group.Exp(a.C, k)}
}

// ScalarMulOpening scales an opening to match ScalarMul.
func (p *Params) ScalarMulOpening(a Opening, k *big.Int) Opening {
	m := new(big.Int).Mul(a.M, k)
	r := new(big.Int).Mul(a.R, k)
	r.Mod(r, p.Group.Q)
	return Opening{M: m, R: r}
}

// Sub computes Commit(m1-m2, r1-r2).
func (p *Params) Sub(a, b Commitment) Commitment {
	return Commitment{C: p.Group.Div(a.C, b.C)}
}

// CommitPublic commits to a public constant with zero randomness; anyone
// can recompute it. Used to fold public bounds into homomorphic relations
// (e.g. forming a commitment to B - v from public B and Commit(v)).
func (p *Params) CommitPublic(m *big.Int) Commitment {
	return Commitment{C: p.ExpG(m)}
}
