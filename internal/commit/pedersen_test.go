package commit

import (
	"math/big"
	"testing"
	"testing/quick"

	"prever/internal/group"
)

func params() *Params { return NewParams(group.TestGroup()) }

func TestCommitVerifyRoundTrip(t *testing.T) {
	p := params()
	for _, m := range []int64{0, 1, -1, 42, 1 << 40} {
		c, o, err := p.CommitInt(m, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !p.Verify(c, o) {
			t.Fatalf("valid opening rejected for m=%d", m)
		}
	}
}

func TestCommitIsHiding(t *testing.T) {
	p := params()
	a, _, _ := p.CommitInt(7, nil)
	b, _, _ := p.CommitInt(7, nil)
	if a.Equal(b) {
		t.Fatal("two commitments to the same value are identical")
	}
}

func TestVerifyRejectsWrongOpening(t *testing.T) {
	p := params()
	c, o, _ := p.CommitInt(7, nil)
	badM := Opening{M: big.NewInt(8), R: o.R}
	if p.Verify(c, badM) {
		t.Fatal("wrong message accepted")
	}
	badR := Opening{M: o.M, R: new(big.Int).Add(o.R, big.NewInt(1))}
	if p.Verify(c, badR) {
		t.Fatal("wrong randomness accepted")
	}
}

func TestHomomorphicAdd(t *testing.T) {
	p := params()
	ca, oa, _ := p.CommitInt(15, nil)
	cb, ob, _ := p.CommitInt(27, nil)
	sum := p.Add(ca, cb)
	oSum := p.AddOpenings(oa, ob)
	if oSum.M.Int64() != 42 {
		t.Fatalf("combined opening message = %v", oSum.M)
	}
	if !p.Verify(sum, oSum) {
		t.Fatal("combined opening does not verify")
	}
}

func TestHomomorphicScalarMul(t *testing.T) {
	p := params()
	c, o, _ := p.CommitInt(6, nil)
	k := big.NewInt(7)
	if !p.Verify(p.ScalarMul(c, k), p.ScalarMulOpening(o, k)) {
		t.Fatal("scaled opening does not verify")
	}
}

func TestHomomorphicSub(t *testing.T) {
	p := params()
	ca, oa, _ := p.CommitInt(50, nil)
	cb, ob, _ := p.CommitInt(8, nil)
	diff := p.Sub(ca, cb)
	oDiff := Opening{
		M: new(big.Int).Sub(oa.M, ob.M),
		R: new(big.Int).Mod(new(big.Int).Sub(oa.R, ob.R), p.Group.Q),
	}
	if !p.Verify(diff, oDiff) {
		t.Fatal("difference opening does not verify")
	}
}

func TestCommitPublic(t *testing.T) {
	p := params()
	b := big.NewInt(40)
	cb := p.CommitPublic(b)
	// CommitPublic(B) must verify with zero randomness.
	if !p.Verify(cb, Opening{M: b, R: big.NewInt(0)}) {
		t.Fatal("public commitment does not open with r=0")
	}
	// Folding: Commit(B) / Commit(v) commits to B - v with randomness -r.
	cv, ov, _ := p.CommitInt(15, nil)
	cDiff := p.Sub(cb, cv)
	oDiff := Opening{
		M: big.NewInt(25),
		R: new(big.Int).Mod(new(big.Int).Neg(ov.R), p.Group.Q),
	}
	if !p.Verify(cDiff, oDiff) {
		t.Fatal("public-bound folding failed")
	}
}

func TestNegativeMessages(t *testing.T) {
	p := params()
	c, o, _ := p.CommitInt(-5, nil)
	if !p.Verify(c, o) {
		t.Fatal("negative message opening rejected")
	}
	// -5 and q-5 are the same exponent: openings are modular.
	alt := Opening{M: new(big.Int).Sub(p.Group.Q, big.NewInt(5)), R: o.R}
	if !p.Verify(c, alt) {
		t.Fatal("modular equivalence of messages broken")
	}
}

func TestParamsDeterministic(t *testing.T) {
	a := NewParams(group.TestGroup())
	b := NewParams(group.TestGroup())
	if a.H.Cmp(b.H) != 0 {
		t.Fatal("H derivation not deterministic")
	}
	if a.H.Cmp(a.G) == 0 {
		t.Fatal("H == G")
	}
}

// Property: commit/verify round trip plus additive homomorphism for random
// values.
func TestQuickHomomorphism(t *testing.T) {
	p := params()
	f := func(a, b int32) bool {
		ca, oa, err := p.CommitInt(int64(a), nil)
		if err != nil {
			return false
		}
		cb, ob, err := p.CommitInt(int64(b), nil)
		if err != nil {
			return false
		}
		return p.Verify(ca, oa) &&
			p.Verify(p.Add(ca, cb), p.AddOpenings(oa, ob))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCommit(b *testing.B) {
	p := params()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := p.CommitInt(int64(i), nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVerify(b *testing.B) {
	p := params()
	c, o, _ := p.CommitInt(12345, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !p.Verify(c, o) {
			b.Fatal("verify failed")
		}
	}
}
