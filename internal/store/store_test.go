package store

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestValueConstructorsAndString(t *testing.T) {
	cases := []struct {
		v    Value
		kind Kind
		s    string
	}{
		{Null(), KindNull, "NULL"},
		{Int(42), KindInt, "42"},
		{Float(2.5), KindFloat, "2.5"},
		{String_("hi"), KindString, `"hi"`},
		{Bool(true), KindBool, "true"},
	}
	for _, c := range cases {
		if c.v.Kind != c.kind {
			t.Errorf("kind = %v, want %v", c.v.Kind, c.kind)
		}
		if c.v.String() != c.s {
			t.Errorf("String() = %q, want %q", c.v.String(), c.s)
		}
	}
	ts := time.Date(2022, 3, 29, 0, 0, 0, 0, time.UTC)
	if Time(ts).String() != "2022-03-29T00:00:00Z" {
		t.Errorf("time string = %q", Time(ts).String())
	}
}

func TestValueNumericCrossKind(t *testing.T) {
	if !Int(3).Equal(Float(3)) {
		t.Error("Int(3) should equal Float(3)")
	}
	if Int(3).Equal(Float(3.5)) {
		t.Error("Int(3) should not equal Float(3.5)")
	}
	c, err := Int(2).Compare(Float(2.5))
	if err != nil || c != -1 {
		t.Errorf("Compare(2, 2.5) = %d, %v", c, err)
	}
	if _, err := String_("a").Compare(Int(1)); err == nil {
		t.Error("string vs int comparison should error")
	}
	if _, err := Null().Compare(Null()); err == nil {
		t.Error("NULL comparison should error")
	}
}

func TestValueConversions(t *testing.T) {
	if f, err := Int(7).AsFloat(); err != nil || f != 7 {
		t.Errorf("AsFloat(Int 7) = %v, %v", f, err)
	}
	if i, err := Float(7).AsInt(); err != nil || i != 7 {
		t.Errorf("AsInt(Float 7) = %v, %v", i, err)
	}
	if _, err := Float(7.5).AsInt(); err == nil {
		t.Error("AsInt(7.5) should error")
	}
	if _, err := String_("x").AsFloat(); err == nil {
		t.Error("AsFloat(string) should error")
	}
}

func TestValueCompareOrderings(t *testing.T) {
	if c, _ := String_("a").Compare(String_("b")); c != -1 {
		t.Error("string order")
	}
	if c, _ := Bool(false).Compare(Bool(true)); c != -1 {
		t.Error("bool order")
	}
	early := time.Date(2022, 1, 1, 0, 0, 0, 0, time.UTC)
	late := early.Add(time.Hour)
	if c, _ := Time(early).Compare(Time(late)); c != -1 {
		t.Error("time order")
	}
	if c, _ := Time(late).Compare(Time(early)); c != 1 {
		t.Error("time reverse order")
	}
	if c, _ := Time(early).Compare(Time(early)); c != 0 {
		t.Error("time equality")
	}
}

func TestKVPutGetDelete(t *testing.T) {
	kv := NewKV()
	if _, err := kv.Get("a"); err != ErrNotFound {
		t.Fatalf("get absent = %v, want ErrNotFound", err)
	}
	v1 := kv.Put("a", []byte("1"))
	if v1 != 1 {
		t.Fatalf("first version = %d", v1)
	}
	got, err := kv.Get("a")
	if err != nil || string(got) != "1" {
		t.Fatalf("get = %q, %v", got, err)
	}
	kv.Put("a", []byte("2"))
	got, _ = kv.Get("a")
	if string(got) != "2" {
		t.Fatalf("after overwrite get = %q", got)
	}
	kv.Delete("a")
	if _, err := kv.Get("a"); err != ErrNotFound {
		t.Fatalf("get deleted = %v", err)
	}
}

func TestKVTimeTravel(t *testing.T) {
	kv := NewKV()
	v1 := kv.Put("k", []byte("one"))
	v2 := kv.Put("k", []byte("two"))
	v3 := kv.Delete("k")
	if got, _ := kv.GetAt("k", v1); string(got) != "one" {
		t.Errorf("at v1 = %q", got)
	}
	if got, _ := kv.GetAt("k", v2); string(got) != "two" {
		t.Errorf("at v2 = %q", got)
	}
	if _, err := kv.GetAt("k", v3); err != ErrNotFound {
		t.Errorf("at v3 err = %v", err)
	}
	if _, err := kv.GetAt("k", 0); err != ErrNotFound {
		t.Errorf("at v0 err = %v", err)
	}
}

func TestKVSnapshotIsolation(t *testing.T) {
	kv := NewKV()
	kv.Put("x", []byte("old"))
	snap := kv.Snapshot()
	kv.Put("x", []byte("new"))
	kv.Put("y", []byte("born-later"))
	got, err := snap.Get("x")
	if err != nil || string(got) != "old" {
		t.Fatalf("snapshot read = %q, %v", got, err)
	}
	if _, err := snap.Get("y"); err != ErrNotFound {
		t.Fatalf("snapshot should not see later key: %v", err)
	}
	keys := snap.Keys()
	if len(keys) != 1 || keys[0] != "x" {
		t.Fatalf("snapshot keys = %v", keys)
	}
}

func TestKVValueCopied(t *testing.T) {
	kv := NewKV()
	buf := []byte("abc")
	kv.Put("k", buf)
	buf[0] = 'X'
	got, _ := kv.Get("k")
	if string(got) != "abc" {
		t.Fatalf("stored value aliased caller buffer: %q", got)
	}
	got[0] = 'Y'
	again, _ := kv.Get("k")
	if string(again) != "abc" {
		t.Fatalf("returned value aliased store: %q", again)
	}
}

func TestKVRangeOrderAndEarlyStop(t *testing.T) {
	kv := NewKV()
	for _, k := range []string{"b", "a", "c"} {
		kv.Put(k, []byte(k))
	}
	var seen []string
	kv.Snapshot().Range(func(k string, v []byte) bool {
		seen = append(seen, k)
		return len(seen) < 2
	})
	if len(seen) != 2 || seen[0] != "a" || seen[1] != "b" {
		t.Fatalf("range order/stop = %v", seen)
	}
}

func TestKVCompact(t *testing.T) {
	kv := NewKV()
	kv.Put("a", []byte("1"))
	kv.Put("a", []byte("2"))
	kv.Put("b", []byte("x"))
	kv.Delete("b")
	dropped := kv.Compact()
	if dropped != 3 { // a's old version, b's value, b's tombstone
		t.Fatalf("compact dropped = %d, want 3", dropped)
	}
	if got, _ := kv.Get("a"); string(got) != "2" {
		t.Fatalf("after compact a = %q", got)
	}
	if _, err := kv.Get("b"); err != ErrNotFound {
		t.Fatalf("after compact b err = %v", err)
	}
	if kv.Len() != 1 {
		t.Fatalf("after compact len = %d", kv.Len())
	}
}

func TestKVConcurrentAccess(t *testing.T) {
	kv := NewKV()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				key := fmt.Sprintf("k%d", i%10)
				kv.Put(key, []byte{byte(g), byte(i)})
				_, _ = kv.Get(key)
				_ = kv.Snapshot().Keys()
			}
		}(g)
	}
	wg.Wait()
	if kv.Version() != 800 {
		t.Fatalf("version = %d, want 800", kv.Version())
	}
}

// Property: GetAt(k, v) where v is the version returned by the j-th Put of
// key k always yields the j-th value.
func TestQuickKVHistory(t *testing.T) {
	f := func(vals [][]byte) bool {
		if len(vals) == 0 || len(vals) > 50 {
			return true
		}
		kv := NewKV()
		versions := make([]uint64, len(vals))
		for i, v := range vals {
			versions[i] = kv.Put("k", v)
		}
		for i, v := range vals {
			got, err := kv.GetAt("k", versions[i])
			if err != nil || string(got) != string(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

var testSchema = MustSchema(
	Column{Name: "worker", Kind: KindString},
	Column{Name: "hours", Kind: KindFloat},
	Column{Name: "week", Kind: KindInt},
)

func TestSchemaValidation(t *testing.T) {
	ok := Row{"worker": String_("w1"), "hours": Float(12), "week": Int(3)}
	if err := testSchema.Validate(ok); err != nil {
		t.Fatalf("valid row rejected: %v", err)
	}
	if err := testSchema.Validate(Row{"worker": String_("w1"), "hours": Float(12)}); err == nil {
		t.Fatal("missing column accepted")
	}
	bad := Row{"worker": String_("w1"), "hours": String_("12"), "week": Int(3)}
	if err := testSchema.Validate(bad); err == nil {
		t.Fatal("wrong kind accepted")
	}
	extra := Row{"worker": String_("w1"), "hours": Float(1), "week": Int(3), "zzz": Int(1)}
	if err := testSchema.Validate(extra); err == nil {
		t.Fatal("unknown column accepted")
	}
	withNull := Row{"worker": Null(), "hours": Float(1), "week": Int(3)}
	if err := testSchema.Validate(withNull); err != nil {
		t.Fatalf("NULL should be allowed: %v", err)
	}
}

func TestSchemaConstructionErrors(t *testing.T) {
	if _, err := NewSchema(Column{Name: "a", Kind: KindInt}, Column{Name: "a", Kind: KindInt}); err == nil {
		t.Fatal("duplicate column accepted")
	}
	if _, err := NewSchema(Column{Name: "", Kind: KindInt}); err == nil {
		t.Fatal("empty column name accepted")
	}
	if testSchema.ColumnIndex("hours") != 1 {
		t.Fatalf("ColumnIndex(hours) = %d", testSchema.ColumnIndex("hours"))
	}
	if testSchema.ColumnIndex("nope") != -1 {
		t.Fatal("ColumnIndex of unknown should be -1")
	}
}

func TestTableCRUDAndVersioning(t *testing.T) {
	tbl := NewTable("tasks", testSchema)
	row := Row{"worker": String_("w1"), "hours": Float(5), "week": Int(1)}
	v1, err := tbl.Upsert("t1", row)
	if err != nil {
		t.Fatal(err)
	}
	row["hours"] = Float(99) // mutate caller's row; table must hold a copy
	got, err := tbl.Get("t1")
	if err != nil {
		t.Fatal(err)
	}
	if got["hours"].F != 5 {
		t.Fatalf("table aliased caller row: hours = %v", got["hours"])
	}
	tbl.Upsert("t1", Row{"worker": String_("w1"), "hours": Float(8), "week": Int(1)})
	old, err := tbl.GetAt("t1", v1)
	if err != nil || old["hours"].F != 5 {
		t.Fatalf("GetAt old version = %v, %v", old, err)
	}
	tbl.Delete("t1")
	if _, err := tbl.Get("t1"); err != ErrNotFound {
		t.Fatalf("deleted row get err = %v", err)
	}
	if tbl.Len() != 0 {
		t.Fatalf("len after delete = %d", tbl.Len())
	}
}

func TestTableRejectsBadRows(t *testing.T) {
	tbl := NewTable("tasks", testSchema)
	if _, err := tbl.Upsert("t1", Row{"worker": String_("w")}); err == nil {
		t.Fatal("incomplete row accepted")
	}
	if tbl.Version() != 0 {
		t.Fatal("failed upsert advanced the version")
	}
}

func TestTableScanAndSelect(t *testing.T) {
	tbl := NewTable("tasks", testSchema)
	for i := 0; i < 5; i++ {
		key := fmt.Sprintf("t%d", i)
		_, err := tbl.Upsert(key, Row{
			"worker": String_(fmt.Sprintf("w%d", i%2)),
			"hours":  Float(float64(i)),
			"week":   Int(1),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	var keys []string
	tbl.Scan(func(k string, _ Row) bool {
		keys = append(keys, k)
		return true
	})
	want := []string{"t0", "t1", "t2", "t3", "t4"}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("scan order = %v", keys)
		}
	}
	w0 := tbl.Select(func(r Row) bool { return r["worker"].S == "w0" })
	if len(w0) != 3 {
		t.Fatalf("select w0 = %d rows, want 3", len(w0))
	}
	all := tbl.Select(nil)
	if len(all) != 5 {
		t.Fatalf("select nil = %d rows, want 5", len(all))
	}
}

func TestTableScanAtVersion(t *testing.T) {
	tbl := NewTable("tasks", testSchema)
	mk := func(h float64) Row {
		return Row{"worker": String_("w"), "hours": Float(h), "week": Int(1)}
	}
	v1, _ := tbl.Upsert("a", mk(1))
	tbl.Upsert("b", mk(2))
	n := 0
	tbl.ScanAt(v1, func(string, Row) bool { n++; return true })
	if n != 1 {
		t.Fatalf("ScanAt(v1) saw %d rows, want 1", n)
	}
}

func BenchmarkKVPut(b *testing.B) {
	kv := NewKV()
	val := []byte("value-of-reasonable-length-for-a-row")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kv.Put(fmt.Sprintf("key-%d", i%1024), val)
	}
}

func BenchmarkKVGet(b *testing.B) {
	kv := NewKV()
	val := []byte("value-of-reasonable-length-for-a-row")
	for i := 0; i < 1024; i++ {
		kv.Put(fmt.Sprintf("key-%d", i), val)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := kv.Get(fmt.Sprintf("key-%d", i%1024)); err != nil {
			b.Fatal(err)
		}
	}
}
