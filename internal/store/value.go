// Package store provides the storage substrate of PReVer: a versioned
// (MVCC) key-value store with consistent snapshots, plus a typed table
// layer (schemas, rows, scans) that the constraint engine evaluates over.
//
// The store is deliberately in-memory: the paper's contribution is the
// verification/privacy architecture layered on top, not the storage medium.
// All mutation goes through a single writer lock; reads are served from
// immutable version chains so snapshots never block writers.
package store

import (
	"fmt"
	"strconv"
	"time"
)

// Kind enumerates the runtime types a table cell (or constraint expression)
// can hold.
type Kind uint8

// The supported value kinds.
const (
	KindNull Kind = iota
	KindInt
	KindFloat
	KindString
	KindBool
	KindTime
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt:
		return "INT"
	case KindFloat:
		return "FLOAT"
	case KindString:
		return "STRING"
	case KindBool:
		return "BOOL"
	case KindTime:
		return "TIME"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Value is a dynamically typed cell value: a small tagged union, avoiding
// interface boxing on the hot evaluation path.
type Value struct {
	Kind Kind
	I    int64
	F    float64
	S    string
	B    bool
	T    time.Time
}

// Constructors for each kind.

// Null returns the NULL value.
func Null() Value { return Value{Kind: KindNull} }

// Int wraps an int64.
func Int(i int64) Value { return Value{Kind: KindInt, I: i} }

// Float wraps a float64.
func Float(f float64) Value { return Value{Kind: KindFloat, F: f} }

// String_ wraps a string. (Named with a trailing underscore because String
// is the Stringer method.)
func String_(s string) Value { return Value{Kind: KindString, S: s} }

// Bool wraps a bool.
func Bool(b bool) Value { return Value{Kind: KindBool, B: b} }

// Time wraps a time.Time.
func Time(t time.Time) Value { return Value{Kind: KindTime, T: t} }

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.Kind == KindNull }

// String renders the value for debugging and CLI output.
func (v Value) String() string {
	switch v.Kind {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.I, 10)
	case KindFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case KindString:
		return strconv.Quote(v.S)
	case KindBool:
		return strconv.FormatBool(v.B)
	case KindTime:
		return v.T.UTC().Format(time.RFC3339)
	default:
		return "?"
	}
}

// AsFloat converts numeric values to float64.
func (v Value) AsFloat() (float64, error) {
	switch v.Kind {
	case KindInt:
		return float64(v.I), nil
	case KindFloat:
		return v.F, nil
	default:
		return 0, fmt.Errorf("store: %s is not numeric", v.Kind)
	}
}

// AsInt converts to int64 when the value is an integer (or an integral
// float).
func (v Value) AsInt() (int64, error) {
	switch v.Kind {
	case KindInt:
		return v.I, nil
	case KindFloat:
		if v.F == float64(int64(v.F)) {
			return int64(v.F), nil
		}
		return 0, fmt.Errorf("store: float %v is not integral", v.F)
	default:
		return 0, fmt.Errorf("store: %s is not an integer", v.Kind)
	}
}

// Equal reports deep equality with numeric cross-kind comparison
// (Int(3) equals Float(3)).
func (v Value) Equal(o Value) bool {
	if v.Kind == o.Kind {
		switch v.Kind {
		case KindNull:
			return true
		case KindInt:
			return v.I == o.I
		case KindFloat:
			return v.F == o.F
		case KindString:
			return v.S == o.S
		case KindBool:
			return v.B == o.B
		case KindTime:
			return v.T.Equal(o.T)
		}
	}
	if v.isNumeric() && o.isNumeric() {
		a, _ := v.AsFloat()
		b, _ := o.AsFloat()
		return a == b
	}
	return false
}

// Compare orders two values: -1, 0 or +1. Returns an error for
// incomparable kinds (e.g. string vs int, anything vs NULL).
func (v Value) Compare(o Value) (int, error) {
	if v.isNumeric() && o.isNumeric() {
		a, _ := v.AsFloat()
		b, _ := o.AsFloat()
		switch {
		case a < b:
			return -1, nil
		case a > b:
			return 1, nil
		default:
			return 0, nil
		}
	}
	if v.Kind != o.Kind {
		return 0, fmt.Errorf("store: cannot compare %s with %s", v.Kind, o.Kind)
	}
	switch v.Kind {
	case KindString:
		switch {
		case v.S < o.S:
			return -1, nil
		case v.S > o.S:
			return 1, nil
		default:
			return 0, nil
		}
	case KindTime:
		switch {
		case v.T.Before(o.T):
			return -1, nil
		case v.T.After(o.T):
			return 1, nil
		default:
			return 0, nil
		}
	case KindBool:
		a, b := 0, 0
		if v.B {
			a = 1
		}
		if o.B {
			b = 1
		}
		return a - b, nil
	default:
		return 0, fmt.Errorf("store: cannot compare values of kind %s", v.Kind)
	}
}

func (v Value) isNumeric() bool { return v.Kind == KindInt || v.Kind == KindFloat }
