package store

import (
	"errors"
	"sort"
	"sync"
)

// ErrNotFound is returned by reads of keys that do not exist (at the read's
// version).
var ErrNotFound = errors.New("store: key not found")

// kvVersion is one entry in a key's version chain.
type kvVersion struct {
	version uint64
	value   []byte
	deleted bool
}

// KV is a multi-version key-value store. Every write is stamped with a
// monotonically increasing version; a Snapshot captures a version and reads
// through it see the store exactly as of that version. The zero value is
// not usable; call NewKV.
type KV struct {
	mu      sync.RWMutex
	version uint64
	data    map[string][]kvVersion
}

// NewKV returns an empty store at version 0.
func NewKV() *KV {
	return &KV{data: make(map[string][]kvVersion)}
}

// Version returns the current (latest) version.
func (kv *KV) Version() uint64 {
	kv.mu.RLock()
	defer kv.mu.RUnlock()
	return kv.version
}

// Put writes value under key and returns the new store version. The value
// slice is copied; callers may reuse their buffer.
func (kv *KV) Put(key string, value []byte) uint64 {
	cp := make([]byte, len(value))
	copy(cp, value)
	kv.mu.Lock()
	defer kv.mu.Unlock()
	kv.version++
	kv.data[key] = append(kv.data[key], kvVersion{version: kv.version, value: cp})
	return kv.version
}

// Delete removes key and returns the new store version. Deleting an absent
// key still advances the version (it records a tombstone) so that history
// replays deterministically.
func (kv *KV) Delete(key string) uint64 {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	kv.version++
	kv.data[key] = append(kv.data[key], kvVersion{version: kv.version, deleted: true})
	return kv.version
}

// Get returns the latest value for key.
func (kv *KV) Get(key string) ([]byte, error) {
	kv.mu.RLock()
	defer kv.mu.RUnlock()
	return kv.getAtLocked(key, kv.version)
}

// GetAt returns the value of key as of the given version.
func (kv *KV) GetAt(key string, version uint64) ([]byte, error) {
	kv.mu.RLock()
	defer kv.mu.RUnlock()
	return kv.getAtLocked(key, version)
}

func (kv *KV) getAtLocked(key string, version uint64) ([]byte, error) {
	chain := kv.data[key]
	// Binary search for the last version <= requested.
	i := sort.Search(len(chain), func(i int) bool { return chain[i].version > version })
	if i == 0 {
		return nil, ErrNotFound
	}
	entry := chain[i-1]
	if entry.deleted {
		return nil, ErrNotFound
	}
	out := make([]byte, len(entry.value))
	copy(out, entry.value)
	return out, nil
}

// Snapshot captures the current version for consistent reads.
func (kv *KV) Snapshot() Snapshot {
	kv.mu.RLock()
	defer kv.mu.RUnlock()
	return Snapshot{kv: kv, version: kv.version}
}

// Keys returns all live keys at the latest version, sorted.
func (kv *KV) Keys() []string {
	return kv.Snapshot().Keys()
}

// Len returns the number of live keys at the latest version.
func (kv *KV) Len() int {
	return len(kv.Keys())
}

// Compact drops all version history older than the latest entry per key and
// removes tombstoned keys entirely. Snapshots taken before Compact must not
// be used afterwards. Returns the number of chain entries dropped.
func (kv *KV) Compact() int {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	dropped := 0
	for k, chain := range kv.data {
		last := chain[len(chain)-1]
		dropped += len(chain) - 1
		if last.deleted {
			dropped++
			delete(kv.data, k)
			continue
		}
		kv.data[k] = []kvVersion{last}
	}
	return dropped
}

// Snapshot is a consistent read view of a KV at a fixed version.
type Snapshot struct {
	kv      *KV
	version uint64
}

// Version returns the snapshot's version.
func (s Snapshot) Version() uint64 { return s.version }

// Get reads key as of the snapshot.
func (s Snapshot) Get(key string) ([]byte, error) {
	return s.kv.GetAt(key, s.version)
}

// Keys returns the live keys at the snapshot, sorted.
func (s Snapshot) Keys() []string {
	s.kv.mu.RLock()
	defer s.kv.mu.RUnlock()
	var keys []string
	for k, chain := range s.kv.data {
		i := sort.Search(len(chain), func(i int) bool { return chain[i].version > s.version })
		if i == 0 || chain[i-1].deleted {
			continue
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Range calls fn for each live (key, value) pair at the snapshot in key
// order, stopping early if fn returns false.
func (s Snapshot) Range(fn func(key string, value []byte) bool) {
	for _, k := range s.Keys() {
		v, err := s.Get(k)
		if err != nil {
			continue // deleted concurrently after Keys(); skip
		}
		if !fn(k, v) {
			return
		}
	}
}
