package store

import (
	"fmt"
	"sort"
	"sync"
)

// Column describes one typed column of a table schema.
type Column struct {
	Name string
	Kind Kind
}

// Schema is an ordered list of typed columns.
type Schema struct {
	Columns []Column
	byName  map[string]int
}

// NewSchema builds a schema, validating that column names are unique and
// non-empty.
func NewSchema(cols ...Column) (*Schema, error) {
	s := &Schema{Columns: cols, byName: make(map[string]int, len(cols))}
	for i, c := range cols {
		if c.Name == "" {
			return nil, fmt.Errorf("store: column %d has empty name", i)
		}
		if _, dup := s.byName[c.Name]; dup {
			return nil, fmt.Errorf("store: duplicate column %q", c.Name)
		}
		s.byName[c.Name] = i
	}
	return s, nil
}

// MustSchema is NewSchema that panics on error; for package-level fixtures.
func MustSchema(cols ...Column) *Schema {
	s, err := NewSchema(cols...)
	if err != nil {
		panic(err)
	}
	return s
}

// ColumnIndex returns the index of the named column, or -1.
func (s *Schema) ColumnIndex(name string) int {
	if i, ok := s.byName[name]; ok {
		return i
	}
	return -1
}

// Validate checks a row against the schema: every column present with a
// matching kind (NULL is allowed in any column).
func (s *Schema) Validate(row Row) error {
	for _, c := range s.Columns {
		v, ok := row[c.Name]
		if !ok {
			return fmt.Errorf("store: row missing column %q", c.Name)
		}
		if v.Kind != KindNull && v.Kind != c.Kind {
			return fmt.Errorf("store: column %q expects %s, got %s", c.Name, c.Kind, v.Kind)
		}
	}
	for name := range row {
		if _, ok := s.byName[name]; !ok {
			return fmt.Errorf("store: row has unknown column %q", name)
		}
	}
	return nil
}

// Row maps column names to values.
type Row map[string]Value

// Clone returns a copy of the row.
func (r Row) Clone() Row {
	out := make(Row, len(r))
	for k, v := range r {
		out[k] = v
	}
	return out
}

// Table is a schema-checked, primary-keyed collection of rows with version
// history per row. Tables serve the constraint engine's scans and the
// framework's apply step.
type Table struct {
	Name   string
	Schema *Schema

	mu      sync.RWMutex
	version uint64
	rows    map[string][]tableVersion // primary key -> version chain
}

type tableVersion struct {
	version uint64
	row     Row // nil means deleted
}

// NewTable creates an empty table with the given schema.
func NewTable(name string, schema *Schema) *Table {
	return &Table{Name: name, Schema: schema, rows: make(map[string][]tableVersion)}
}

// Version returns the table's current version.
func (t *Table) Version() uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.version
}

// Upsert inserts or replaces the row under key after schema validation and
// returns the new table version.
func (t *Table) Upsert(key string, row Row) (uint64, error) {
	if err := t.Schema.Validate(row); err != nil {
		return 0, err
	}
	cp := row.Clone()
	t.mu.Lock()
	defer t.mu.Unlock()
	t.version++
	t.rows[key] = append(t.rows[key], tableVersion{version: t.version, row: cp})
	return t.version, nil
}

// Delete removes the row under key, recording a tombstone.
func (t *Table) Delete(key string) uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.version++
	t.rows[key] = append(t.rows[key], tableVersion{version: t.version})
	return t.version
}

// Get returns the latest row under key (a copy).
func (t *Table) Get(key string) (Row, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.getAtLocked(key, t.version)
}

// GetAt returns the row under key as of a version.
func (t *Table) GetAt(key string, version uint64) (Row, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.getAtLocked(key, version)
}

func (t *Table) getAtLocked(key string, version uint64) (Row, error) {
	chain := t.rows[key]
	i := sort.Search(len(chain), func(i int) bool { return chain[i].version > version })
	if i == 0 || chain[i-1].row == nil {
		return nil, ErrNotFound
	}
	return chain[i-1].row.Clone(), nil
}

// Len returns the number of live rows.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	n := 0
	for _, chain := range t.rows {
		if chain[len(chain)-1].row != nil {
			n++
		}
	}
	return n
}

// Scan calls fn for every live row in primary-key order, stopping early if
// fn returns false. The row passed to fn is a copy.
func (t *Table) Scan(fn func(key string, row Row) bool) {
	t.ScanAt(t.Version(), fn)
}

// ScanAt is Scan as of a fixed version.
func (t *Table) ScanAt(version uint64, fn func(key string, row Row) bool) {
	t.mu.RLock()
	keys := make([]string, 0, len(t.rows))
	for k := range t.rows {
		keys = append(keys, k)
	}
	t.mu.RUnlock()
	sort.Strings(keys)
	for _, k := range keys {
		row, err := t.GetAt(k, version)
		if err != nil {
			continue
		}
		if !fn(k, row) {
			return
		}
	}
}

// Select returns copies of all live rows matching pred (pred nil matches
// everything), in key order.
func (t *Table) Select(pred func(Row) bool) []Row {
	var out []Row
	t.Scan(func(_ string, row Row) bool {
		if pred == nil || pred(row) {
			out = append(out, row)
		}
		return true
	})
	return out
}
