// Package wal is a CRC-framed, segment-rotated write-ahead log with
// atomic state snapshots and tail compaction — the crash-durability
// substrate under both consensus implementations (paxos and pbft).
//
// On disk a log directory holds two kinds of files:
//
//	seg-%016d.wal    append-only record segments, rotated at SegmentBytes
//	snap-%016d.snap  full state snapshots, written temp-then-rename
//
// Each record (in segments and inside snapshot files alike) is framed as
//
//	uint32 LE payload length | uint32 LE CRC-32C of payload | payload
//
// so a torn write — a crash mid-append — is detected by a short or
// CRC-mismatching tail. Recovery truncates the segment at the last valid
// record and discards any later segments; it never panics on corrupt
// input.
//
// Snapshots compact the tail: Snapshot(data) durably writes the state,
// records the segment horizon (the index of the first segment that
// post-dates the snapshot), then deletes all pre-horizon segments. A
// crash between those steps is safe in both directions — the horizon
// stored inside the snapshot file tells recovery exactly which segments
// are superseded, so stale segments left behind by a crash are skipped,
// and a snapshot that never finished its rename is invisible (the
// previous snapshot plus the full segment tail is still intact).
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Snapshotter is implemented by state machines that can be captured into
// and restored from an opaque blob. Consensus replicas embed the
// application's blob inside their own snapshot so one file restores both
// the protocol state and the state machine under it.
type Snapshotter interface {
	// Snapshot returns a self-contained encoding of the current state.
	Snapshot() ([]byte, error)
	// Restore replaces the current state with a previously captured one.
	Restore(data []byte) error
}

const (
	segPrefix  = "seg-"
	segSuffix  = ".wal"
	snapPrefix = "snap-"
	snapSuffix = ".snap"
	tmpSuffix  = ".tmp"

	frameHeader = 8 // uint32 length + uint32 CRC
	// maxRecordBytes rejects absurd lengths produced by corruption
	// before any allocation happens.
	maxRecordBytes = 1 << 28

	// DefaultSegmentBytes is the rotation threshold when Options leaves
	// SegmentBytes zero.
	DefaultSegmentBytes = 4 << 20
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Options tune a Log.
type Options struct {
	// SegmentBytes is the size at which the active segment is rotated.
	// Zero means DefaultSegmentBytes.
	SegmentBytes int64
	// NoSync skips fsync on Sync calls. Test/bench only: it trades
	// crash-durability for speed and must never be set in production.
	NoSync bool
}

// Recovery reports what Open reconstructed from disk.
type Recovery struct {
	// Snapshot is the payload of the newest intact snapshot, nil if the
	// directory holds none.
	Snapshot []byte
	// SnapshotSeq is that snapshot's sequence number (0 when Snapshot
	// is nil).
	SnapshotSeq uint64
	// Records are the valid records that post-date the snapshot, in
	// append order.
	Records [][]byte
	// Truncated is true when a torn or corrupt tail was cut off.
	Truncated bool
}

// Log is an open write-ahead log. All methods are safe for concurrent
// use.
type Log struct {
	dir  string
	opts Options

	mu      sync.Mutex
	f       *os.File // active segment
	segIdx  uint64   // active segment index
	size    int64    // bytes written to the active segment
	snapSeq uint64   // newest snapshot sequence number
	dirty   bool     // appended since the last Sync
	closed  bool
}

// ErrClosed is returned by operations on a closed Log.
var ErrClosed = errors.New("wal: log is closed")

// Open recovers the log in dir (created if absent) and returns it ready
// for appending, together with what was found on disk. Appends always go
// to a fresh segment, so a truncated tail segment is never written to
// again.
func Open(dir string, opts Options) (*Log, *Recovery, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("wal: %w", err)
	}
	rec := &Recovery{}

	snapSeq, horizon, err := loadSnapshot(dir, rec)
	if err != nil {
		return nil, nil, err
	}

	segs, err := listNumbered(dir, segPrefix, segSuffix)
	if err != nil {
		return nil, nil, err
	}
	lastIdx := uint64(0)
	for _, s := range segs {
		if s.idx >= lastIdx {
			lastIdx = s.idx
		}
		if s.idx < horizon {
			// Superseded by the snapshot: a crash interrupted the
			// post-snapshot cleanup. Finish it now.
			_ = os.Remove(filepath.Join(dir, s.name))
			continue
		}
		stop, err := readSegment(filepath.Join(dir, s.name), rec)
		if err != nil {
			return nil, nil, err
		}
		if stop {
			// Torn tail: anything in later segments was written after
			// the corruption point and cannot be trusted to be ordered.
			for _, later := range segs {
				if later.idx > s.idx {
					_ = os.Remove(filepath.Join(dir, later.name))
				}
			}
			break
		}
	}

	l := &Log{dir: dir, opts: opts, segIdx: lastIdx + 1, snapSeq: snapSeq}
	if err := l.openSegmentLocked(); err != nil {
		return nil, nil, err
	}
	return l, rec, nil
}

// openSegmentLocked creates and syncs a fresh active segment. Callers
// hold l.mu (or own the Log exclusively during Open).
func (l *Log) openSegmentLocked() error {
	name := filepath.Join(l.dir, fmt.Sprintf("%s%016d%s", segPrefix, l.segIdx, segSuffix))
	f, err := os.OpenFile(name, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	l.f = f
	l.size = 0
	return syncDir(l.dir)
}

// Append frames and writes one record to the active segment, rotating
// first if the segment is full. The record is NOT durable until Sync
// returns.
func (l *Log) Append(payload []byte) error {
	if len(payload) > maxRecordBytes {
		return fmt.Errorf("wal: record of %d bytes exceeds limit", len(payload))
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.size > 0 && l.size+int64(frameHeader+len(payload)) > l.opts.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			return err
		}
	}
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
	if _, err := l.f.Write(hdr[:]); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if _, err := l.f.Write(payload); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	l.size += int64(frameHeader + len(payload))
	l.dirty = true
	return nil
}

// rotateLocked syncs and closes the active segment and opens the next.
func (l *Log) rotateLocked() error {
	if err := l.syncLocked(); err != nil {
		return err
	}
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	l.segIdx++
	return l.openSegmentLocked()
}

// Sync makes every record appended so far durable (fsync on the active
// segment). It is the commit barrier: consensus must not ack, vote, or
// wake a client waiter before Sync returns.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if !l.dirty {
		return nil
	}
	if !l.opts.NoSync {
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("wal: %w", err)
		}
	}
	l.dirty = false
	return nil
}

// AppendSync appends one record and makes it durable in one call.
func (l *Log) AppendSync(payload []byte) error {
	if err := l.Append(payload); err != nil {
		return err
	}
	return l.Sync()
}

// Snapshot durably writes data as the new state snapshot, then compacts:
// every record appended before this call is superseded and its segments
// are deleted. The write is temp-then-rename so a crash leaves either
// the old snapshot (with the full segment tail) or the new one; the
// segment horizon stored inside the file keeps a crash between rename
// and cleanup from replaying superseded records.
func (l *Log) Snapshot(data []byte) error {
	if len(data) > maxRecordBytes {
		return fmt.Errorf("wal: snapshot of %d bytes exceeds limit", len(data))
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	// Records appended after this point belong to the next segment,
	// which post-dates the snapshot.
	if err := l.rotateLocked(); err != nil {
		return err
	}
	horizon := l.segIdx // first segment NOT covered by the snapshot
	seq := l.snapSeq + 1

	final := filepath.Join(l.dir, fmt.Sprintf("%s%016d%s", snapPrefix, seq, snapSuffix))
	tmp := final + tmpSuffix
	if err := writeSnapshotFile(tmp, horizon, data, l.opts.NoSync); err != nil {
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if err := syncDir(l.dir); err != nil {
		return err
	}
	l.snapSeq = seq

	// Cleanup is best-effort: the horizon makes leftovers harmless.
	if ents, err := os.ReadDir(l.dir); err == nil {
		for _, e := range ents {
			if idx, ok := parseNumbered(e.Name(), segPrefix, segSuffix); ok && idx < horizon {
				_ = os.Remove(filepath.Join(l.dir, e.Name()))
			}
			if idx, ok := parseNumbered(e.Name(), snapPrefix, snapSuffix); ok && idx < seq {
				_ = os.Remove(filepath.Join(l.dir, e.Name()))
			}
		}
	}
	return nil
}

// Close syncs and closes the active segment. Further operations return
// ErrClosed.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	err := l.syncLocked()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.closed = true
	return err
}

// Dir returns the directory this log lives in.
func (l *Log) Dir() string { return l.dir }

// writeSnapshotFile writes horizon + data as two framed records into
// path and fsyncs it.
func writeSnapshotFile(path string, horizon uint64, data []byte, noSync bool) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint64(hdr[:], horizon)
	werr := writeFramed(f, hdr[:])
	if werr == nil {
		werr = writeFramed(f, data)
	}
	if werr == nil && !noSync {
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		_ = os.Remove(path)
		return fmt.Errorf("wal: %w", werr)
	}
	return nil
}

func writeFramed(w io.Writer, payload []byte) error {
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// loadSnapshot finds the newest intact snapshot, filling rec and
// returning its sequence number and segment horizon. Corrupt or partial
// snapshot files are skipped (falling back to older ones) and removed.
func loadSnapshot(dir string, rec *Recovery) (seq, horizon uint64, err error) {
	snaps, err := listNumbered(dir, snapPrefix, snapSuffix)
	if err != nil {
		return 0, 0, err
	}
	// Newest first.
	for i := len(snaps) - 1; i >= 0; i-- {
		path := filepath.Join(dir, snaps[i].name)
		h, data, ok := readSnapshotFile(path)
		if !ok {
			// Torn or corrupt: unusable, and keeping it would shadow
			// the good one on the next open.
			_ = os.Remove(path)
			continue
		}
		rec.Snapshot = data
		rec.SnapshotSeq = snaps[i].idx
		// Older snapshots are dead weight now.
		for j := 0; j < i; j++ {
			_ = os.Remove(filepath.Join(dir, snaps[j].name))
		}
		return snaps[i].idx, h, nil
	}
	return 0, 0, nil
}

// readSnapshotFile parses one snapshot file; ok is false on any framing
// or CRC failure.
func readSnapshotFile(path string) (horizon uint64, data []byte, ok bool) {
	b, err := os.ReadFile(path)
	if err != nil {
		return 0, nil, false
	}
	hdr, rest, ok := nextFrame(b)
	if !ok || len(hdr) != 8 {
		return 0, nil, false
	}
	data, rest, ok = nextFrame(rest)
	if !ok || len(rest) != 0 {
		return 0, nil, false
	}
	return binary.LittleEndian.Uint64(hdr), data, true
}

// readSegment appends the segment's valid records to rec. stop is true
// when a torn/corrupt tail was found (the file has been truncated at the
// last valid record and later segments must be dropped).
func readSegment(path string, rec *Recovery) (stop bool, err error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return false, fmt.Errorf("wal: %w", err)
	}
	off := 0
	for {
		payload, rest, ok := nextFrame(b[off:])
		if !ok {
			if off == len(b) {
				return false, nil // clean end of segment
			}
			// Torn tail: cut the file back to the last valid record.
			rec.Truncated = true
			if terr := os.Truncate(path, int64(off)); terr != nil {
				return false, fmt.Errorf("wal: truncating torn tail: %w", terr)
			}
			return true, nil
		}
		rec.Records = append(rec.Records, payload)
		off = len(b) - len(rest)
	}
}

// nextFrame decodes one framed record from b. ok is false when b is
// empty, short, oversized, or fails the CRC.
func nextFrame(b []byte) (payload, rest []byte, ok bool) {
	if len(b) < frameHeader {
		return nil, nil, false
	}
	n := binary.LittleEndian.Uint32(b[0:4])
	if n > maxRecordBytes || int(n) > len(b)-frameHeader {
		return nil, nil, false
	}
	sum := binary.LittleEndian.Uint32(b[4:8])
	payload = b[frameHeader : frameHeader+int(n)]
	if crc32.Checksum(payload, crcTable) != sum {
		return nil, nil, false
	}
	return payload, b[frameHeader+int(n):], true
}

type numbered struct {
	name string
	idx  uint64
}

// listNumbered returns prefix<N>suffix files in dir sorted by N,
// deleting stray temp files from interrupted snapshot writes.
func listNumbered(dir, prefix, suffix string) ([]numbered, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var out []numbered
	for _, e := range ents {
		name := e.Name()
		if strings.HasSuffix(name, tmpSuffix) {
			_ = os.Remove(filepath.Join(dir, name))
			continue
		}
		if idx, ok := parseNumbered(name, prefix, suffix); ok {
			out = append(out, numbered{name: name, idx: idx})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].idx < out[j].idx })
	return out, nil
}

func parseNumbered(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	mid := name[len(prefix) : len(name)-len(suffix)]
	idx, err := strconv.ParseUint(mid, 10, 64)
	if err != nil {
		return 0, false
	}
	return idx, true
}

// syncDir fsyncs a directory so renames and creates within it are
// durable. Best-effort on platforms where directories cannot be synced.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	serr := d.Sync()
	if cerr := d.Close(); serr == nil {
		serr = cerr
	}
	if serr != nil && !errors.Is(serr, os.ErrInvalid) {
		return fmt.Errorf("wal: %w", serr)
	}
	return nil
}
