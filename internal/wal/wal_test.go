package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func openT(t *testing.T, dir string, opts Options) (*Log, *Recovery) {
	t.Helper()
	l, rec, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return l, rec
}

func appendAll(t *testing.T, l *Log, recs ...string) {
	t.Helper()
	for _, r := range recs {
		if err := l.Append([]byte(r)); err != nil {
			t.Fatalf("Append(%q): %v", r, err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
}

func recStrings(rec *Recovery) []string {
	out := make([]string, len(rec.Records))
	for i, r := range rec.Records {
		out[i] = string(r)
	}
	return out
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, rec := openT(t, dir, Options{})
	if rec.Snapshot != nil || len(rec.Records) != 0 || rec.Truncated {
		t.Fatalf("fresh dir recovered %+v, want empty", rec)
	}
	appendAll(t, l, "a", "b", "c")
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	_, rec2 := openT(t, dir, Options{})
	if got, want := strings.Join(recStrings(rec2), ","), "a,b,c"; got != want {
		t.Fatalf("recovered %q, want %q", got, want)
	}
	if rec2.Truncated {
		t.Fatal("clean log reported a truncated tail")
	}
}

func TestEmptyAndLargeRecords(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{})
	big := bytes.Repeat([]byte{0xAB}, 1<<16)
	if err := l.Append(nil); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendSync(big); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, rec := openT(t, dir, Options{})
	if len(rec.Records) != 2 || len(rec.Records[0]) != 0 || !bytes.Equal(rec.Records[1], big) {
		t.Fatalf("recovered %d records, want empty + 64KiB", len(rec.Records))
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{SegmentBytes: 64})
	var want []string
	for i := 0; i < 40; i++ {
		r := fmt.Sprintf("record-%02d", i)
		want = append(want, r)
		appendAll(t, l, r)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := filepath.Glob(filepath.Join(dir, segPrefix+"*"+segSuffix))
	if err != nil || len(segs) < 3 {
		t.Fatalf("want >=3 segments after rotation, got %d (%v)", len(segs), err)
	}
	_, rec := openT(t, dir, Options{SegmentBytes: 64})
	if got := strings.Join(recStrings(rec), ","); got != strings.Join(want, ",") {
		t.Fatalf("rotation lost records:\n got %s\nwant %s", got, strings.Join(want, ","))
	}
}

// TestTornTailTruncates crashes mid-record: the tail is cut back to the
// last valid record, recovery never errors or panics, and the log stays
// usable for new appends.
func TestTornTailTruncates(t *testing.T) {
	for _, cut := range []int{1, 3, frameHeader - 1, frameHeader + 2} {
		t.Run(fmt.Sprintf("cut%d", cut), func(t *testing.T) {
			dir := t.TempDir()
			l, _ := openT(t, dir, Options{})
			appendAll(t, l, "keep-1", "keep-2", "torn-record-payload")
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			seg := onlySegment(t, dir)
			info, err := os.Stat(seg)
			if err != nil {
				t.Fatal(err)
			}
			// Chop the final record somewhere inside its frame.
			if err := os.Truncate(seg, info.Size()-int64(len("torn-record-payload"))-int64(frameHeader)+int64(cut)); err != nil {
				t.Fatal(err)
			}

			l2, rec := openT(t, dir, Options{})
			if !rec.Truncated {
				t.Fatal("torn tail not reported")
			}
			if got := strings.Join(recStrings(rec), ","); got != "keep-1,keep-2" {
				t.Fatalf("recovered %q, want the two intact records", got)
			}
			// Still writable after truncation.
			appendAll(t, l2, "after-tear")
			if err := l2.Close(); err != nil {
				t.Fatal(err)
			}
			_, rec3 := openT(t, dir, Options{})
			if got := strings.Join(recStrings(rec3), ","); got != "keep-1,keep-2,after-tear" {
				t.Fatalf("post-tear append lost: %q", got)
			}
		})
	}
}

// TestCorruptTailBitFlip flips one payload byte: the CRC rejects the
// record and everything after it.
func TestCorruptTailBitFlip(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{})
	appendAll(t, l, "good-1", "good-2", "bad-record", "unreachable")
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	seg := onlySegment(t, dir)
	b, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	i := bytes.Index(b, []byte("bad-record"))
	if i < 0 {
		t.Fatal("payload not found")
	}
	b[i] ^= 0x40
	if err := os.WriteFile(seg, b, 0o644); err != nil {
		t.Fatal(err)
	}

	_, rec := openT(t, dir, Options{})
	if !rec.Truncated {
		t.Fatal("bit flip not detected")
	}
	if got := strings.Join(recStrings(rec), ","); got != "good-1,good-2" {
		t.Fatalf("recovered %q, want only the records before the flip", got)
	}
}

// TestCorruptLengthField writes garbage over a length prefix (an absurd
// size): recovery must not allocate it or panic.
func TestCorruptLengthField(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{})
	appendAll(t, l, "ok", "victim")
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	seg := onlySegment(t, dir)
	b, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	i := bytes.Index(b, []byte("victim"))
	copy(b[i-frameHeader:], []byte{0xFF, 0xFF, 0xFF, 0xFF})
	if err := os.WriteFile(seg, b, 0o644); err != nil {
		t.Fatal(err)
	}
	_, rec := openT(t, dir, Options{})
	if got := strings.Join(recStrings(rec), ","); got != "ok" || !rec.Truncated {
		t.Fatalf("recovered %q (truncated=%v), want just %q", got, rec.Truncated, "ok")
	}
}

// TestTornTailDropsLaterSegments: corruption in segment k discards
// segments > k entirely — their ordering relative to the lost records is
// unknowable.
func TestTornTailDropsLaterSegments(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{SegmentBytes: 32})
	appendAll(t, l, "seg1-record-aaaaaaaaaaaa", "seg2-record-bbbbbbbbbbbb", "seg3-record-cccccccccccc")
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, segPrefix+"*"+segSuffix))
	if len(segs) < 3 {
		t.Fatalf("setup needs >=3 segments, got %d", len(segs))
	}
	// Corrupt the middle one.
	b, err := os.ReadFile(segs[1])
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-1] ^= 0xFF
	if err := os.WriteFile(segs[1], b, 0o644); err != nil {
		t.Fatal(err)
	}

	_, rec := openT(t, dir, Options{SegmentBytes: 32})
	if got := strings.Join(recStrings(rec), ","); got != "seg1-record-aaaaaaaaaaaa" {
		t.Fatalf("recovered %q, want only segment 1's record", got)
	}
	if left, _ := filepath.Glob(filepath.Join(dir, segPrefix+"*"+segSuffix)); len(left) > 3 {
		t.Fatalf("later segments not removed: %v", left)
	}
}

func TestSnapshotCompactsTail(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{})
	appendAll(t, l, "pre-1", "pre-2")
	if err := l.Snapshot([]byte("state@2")); err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, "post-1")
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	_, rec := openT(t, dir, Options{})
	if string(rec.Snapshot) != "state@2" {
		t.Fatalf("snapshot = %q, want state@2", rec.Snapshot)
	}
	if got := strings.Join(recStrings(rec), ","); got != "post-1" {
		t.Fatalf("post-snapshot records = %q, want only post-1", got)
	}
}

// TestSnapshotCrashBeforeRename: a leftover .tmp never shadows the real
// state — recovery sees the previous snapshot plus the full tail.
func TestSnapshotCrashBeforeRename(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{})
	appendAll(t, l, "r1", "r2")
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a snapshot write that died before rename.
	tmp := filepath.Join(dir, snapPrefix+"0000000000000001"+snapSuffix+tmpSuffix)
	if err := os.WriteFile(tmp, []byte("partial snapshot bytes"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, rec := openT(t, dir, Options{})
	if rec.Snapshot != nil {
		t.Fatalf("partial snapshot surfaced: %q", rec.Snapshot)
	}
	if got := strings.Join(recStrings(rec), ","); got != "r1,r2" {
		t.Fatalf("recovered %q, want full tail", got)
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatal("stray .tmp not cleaned up")
	}
}

// TestSnapshotCrashBeforeCleanup: the snapshot renamed but the old
// segments survived the crash. The horizon must keep them from being
// replayed on top of the newer state.
func TestSnapshotCrashBeforeCleanup(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{})
	appendAll(t, l, "old-1", "old-2")
	// Preserve the pre-snapshot segment as if cleanup never ran.
	seg := onlySegment(t, dir)
	saved, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Snapshot([]byte("state")); err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, "new-1")
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(seg, saved, 0o644); err != nil {
		t.Fatal(err)
	}

	_, rec := openT(t, dir, Options{})
	if string(rec.Snapshot) != "state" {
		t.Fatalf("snapshot = %q", rec.Snapshot)
	}
	if got := strings.Join(recStrings(rec), ","); got != "new-1" {
		t.Fatalf("superseded segment replayed: %q", got)
	}
}

// TestCorruptSnapshotFallsBack: a bit-flipped newest snapshot is
// rejected; recovery falls back to the previous one. (The older
// snapshot's tail segments are gone — compaction deleted them — so the
// caller sees older state and learn-syncs the difference; what it must
// never see is corrupt state.)
func TestCorruptSnapshotFallsBack(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{})
	if err := l.Snapshot([]byte("snap-one")); err != nil {
		t.Fatal(err)
	}
	if err := l.Snapshot([]byte("snap-two")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Snapshot() prunes older snaps; re-create snap 1 to model a crash
	// that left both behind, then corrupt snap 2.
	one := filepath.Join(dir, snapPrefix+"0000000000000001"+snapSuffix)
	if err := writeSnapshotFile(one, 0, []byte("snap-one"), false); err != nil {
		t.Fatal(err)
	}
	two := filepath.Join(dir, snapPrefix+"0000000000000002"+snapSuffix)
	b, err := os.ReadFile(two)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-2] ^= 0x01
	if err := os.WriteFile(two, b, 0o644); err != nil {
		t.Fatal(err)
	}

	_, rec := openT(t, dir, Options{})
	if string(rec.Snapshot) != "snap-one" {
		t.Fatalf("snapshot = %q, want fallback snap-one", rec.Snapshot)
	}
	if _, err := os.Stat(two); !os.IsNotExist(err) {
		t.Fatal("corrupt snapshot not removed")
	}
}

func TestClosedLogRejectsOps(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]byte("x")); err != ErrClosed {
		t.Fatalf("Append on closed = %v, want ErrClosed", err)
	}
	if err := l.Sync(); err != ErrClosed {
		t.Fatalf("Sync on closed = %v, want ErrClosed", err)
	}
	if err := l.Snapshot(nil); err != ErrClosed {
		t.Fatalf("Snapshot on closed = %v, want ErrClosed", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("double Close = %v, want nil", err)
	}
}

func TestConcurrentAppend(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{SegmentBytes: 256, NoSync: true})
	done := make(chan error, 4)
	for g := 0; g < 4; g++ {
		go func(g int) {
			for i := 0; i < 50; i++ {
				if err := l.AppendSync([]byte(fmt.Sprintf("g%d-%02d", g, i))); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(g)
	}
	for g := 0; g < 4; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, rec := openT(t, dir, Options{})
	if len(rec.Records) != 200 {
		t.Fatalf("recovered %d records, want 200", len(rec.Records))
	}
	seen := map[string]bool{}
	for _, r := range rec.Records {
		if seen[string(r)] {
			t.Fatalf("duplicate record %q", r)
		}
		seen[string(r)] = true
	}
}

func onlySegment(t *testing.T, dir string) string {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(dir, segPrefix+"*"+segSuffix))
	if err != nil || len(segs) != 1 {
		t.Fatalf("want exactly one segment, got %v (%v)", segs, err)
	}
	return segs[0]
}

func BenchmarkWALAppend(b *testing.B) {
	l, _, err := Open(b.TempDir(), Options{NoSync: true})
	if err != nil {
		b.Fatal(err)
	}
	defer func() { _ = l.Close() }()
	payload := bytes.Repeat([]byte{0x5A}, 256)
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := l.Append(payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWALAppendFsync(b *testing.B) {
	l, _, err := Open(b.TempDir(), Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer func() { _ = l.Close() }()
	payload := bytes.Repeat([]byte{0x5A}, 256)
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := l.AppendSync(payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWALRecover(b *testing.B) {
	dir := b.TempDir()
	l, _, err := Open(dir, Options{NoSync: true})
	if err != nil {
		b.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0x5A}, 256)
	for i := 0; i < 10000; i++ {
		if err := l.Append(payload); err != nil {
			b.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l2, rec, err := Open(dir, Options{})
		if err != nil {
			b.Fatal(err)
		}
		if len(rec.Records) != 10000 {
			b.Fatalf("recovered %d", len(rec.Records))
		}
		if err := l2.Close(); err != nil {
			b.Fatal(err)
		}
	}
}
