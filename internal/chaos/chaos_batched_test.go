package chaos

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"prever/internal/chain"
	"prever/internal/mempool"
	"prever/internal/netsim"
	"prever/internal/paxos"
	"prever/internal/pbft"
)

// batchChecker verifies the paxos apply contract when slots carry
// mempool batches: contiguous slots exactly once, batch values fanned
// out, and op IDs deduplicated the way chain peers do it — with an
// unbounded seen-map keyed only on the applied sequence, so every
// replica drops the same duplicates and the op streams stay comparable.
// (A client timeout retry may legally commit one batch into two slots;
// the dedup is what turns that at-least-once into exactly-once.)
type batchChecker struct {
	mu   sync.Mutex
	next uint64
	seen map[string]bool
	ops  []string
	bad  []string
}

func (c *batchChecker) apply(slot uint64, value []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.seen == nil {
		c.seen = make(map[string]bool)
	}
	if slot != c.next {
		c.bad = append(c.bad, fmt.Sprintf("applied slot %d, expected %d", slot, c.next))
		return
	}
	c.next++
	ops, ok := paxos.DecodeBatch(value)
	if !ok {
		ops = [][]byte{value} // no-op gap fill or bare value
	}
	for _, op := range ops {
		id := string(op)
		if id == "" || c.seen[id] {
			continue
		}
		c.seen[id] = true
		c.ops = append(c.ops, id)
	}
}

func (c *batchChecker) snapshot() (ops, bad []string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.ops...), append([]string(nil), c.bad...)
}

// TestChaosPaxosBatched drives a mempool + batcher over the paxos
// failover client while the injector crashes and isolates replicas:
// every acked op must survive into a contiguous, exactly-once,
// replica-identical applied stream.
func TestChaosPaxosBatched(t *testing.T) {
	seed := chaosSeed(t)
	logSeed(t, seed)
	net := netsim.New(faultyConfig(seed, 0.01))
	defer net.Close()

	ids := []string{"pax0", "pax1", "pax2", "pax3", "pax4"}
	checkers := make(map[string]*batchChecker)
	var replicas []*paxos.Replica
	var targets []Target
	for _, id := range ids {
		bc := &batchChecker{}
		checkers[id] = bc
		r, err := paxos.NewReplica(net, id, ids, bc.apply)
		if err != nil {
			t.Fatal(err)
		}
		replicas = append(replicas, r)
		targets = append(targets, Target{ID: id, Crash: r.Crash, Restart: r.Restart})
	}
	client, err := paxos.NewClient(net, replicas, paxos.ClientOptions{
		TryTimeout:   300 * time.Millisecond,
		ElectTimeout: 500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	pool := mempool.NewPool(mempool.Config{
		Cap:           1024,
		Lanes:         4,
		BatchSize:     8,
		FlushInterval: 2 * time.Millisecond,
		MaxInFlight:   4,
	})
	batcher := mempool.NewBatcher(pool, func(ops [][]byte) func() error {
		p := client.StartBatch(ops)
		return func() error {
			_, err := p.Wait(25 * time.Second)
			return err
		}
	})

	inj := NewInjector(net, targets, Options{MaxDown: 2, Seed: seed})
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() { defer close(done); inj.Run(stop, 20*time.Millisecond) }()

	const ops = 60
	var acked []string
	var ackWG sync.WaitGroup
	errs := make(chan error, ops)
	for i := 0; i < ops; i++ {
		id := fmt.Sprintf("op-%d", i)
		acked = append(acked, id)
		ackWG.Add(1)
		err := pool.Add(mempool.Op{ID: id, Lane: fmt.Sprintf("lane-%d", i%4), Data: []byte(id)}, func(err error) {
			defer ackWG.Done()
			if err != nil {
				errs <- fmt.Errorf("op %s: %w", id, err)
			}
		})
		if err != nil {
			t.Fatalf("add %d: %v (seed %d)", i, err, seed)
		}
		time.Sleep(3 * time.Millisecond)
	}
	waitAcks := make(chan struct{})
	go func() { defer close(waitAcks); ackWG.Wait() }()
	select {
	case <-waitAcks:
	case <-time.After(60 * time.Second):
		t.Fatalf("ops never all acked (seed %d, events %v)", seed, inj.Events())
	}
	close(errs)
	for err := range errs {
		t.Fatalf("%v (seed %d, events %v)", err, seed, inj.Events())
	}
	close(stop)
	<-done
	batcher.Stop()
	if err := inj.HealAll(); err != nil {
		t.Fatalf("%v (seed %d)", err, seed)
	}

	// Convergence: every replica's deduped op stream must contain every
	// acked op and all streams must be identical. Waiting on applied
	// *heights* alone is not enough — replicas can agree on a floor while
	// the slots above it (re-proposed by the post-heal election) are still
	// uncommitted. Elections are retried inside the loop: a fresh election
	// fills crash-torn gaps with no-ops and re-broadcasts both the adopted
	// values and the chosen log, which is the only retransmission path for
	// an accept lost in flight (accepts are fire-once).
	converged := func() bool {
		want, _ := checkers[ids[0]].snapshot()
		have := make(map[string]bool, len(want))
		for _, op := range want {
			have[op] = true
		}
		for _, id := range acked {
			if !have[id] {
				return false
			}
		}
		for _, id := range ids[1:] {
			got, _ := checkers[id].snapshot()
			if len(got) != len(want) {
				return false
			}
			for i := range want {
				if got[i] != want[i] {
					return false
				}
			}
		}
		return true
	}
	deadline := time.Now().Add(30 * time.Second)
	for attempt := 0; !converged(); attempt++ {
		if time.Now().After(deadline) {
			var state []string
			for _, r := range replicas {
				state = append(state, fmt.Sprintf("%s=%d", r.ID(), r.Applied()))
			}
			t.Fatalf("replicas never converged: %v (seed %d, events %v)", state, seed, inj.Events())
		}
		// Rotate candidates: right after heal a stale higher ballot can
		// reject one replica's try while another's succeeds.
		_ = replicas[attempt%len(replicas)].BecomeLeader(2 * time.Second)
		for _, r := range replicas {
			r.Sync()
		}
		time.Sleep(100 * time.Millisecond)
	}

	// Safety: contiguous exactly-once apply and identical deduped op
	// streams on every replica; every acked op present exactly once.
	want, bad := checkers[ids[0]].snapshot()
	if len(bad) > 0 {
		t.Fatalf("replica %s broke apply contract: %v (seed %d)", ids[0], bad, seed)
	}
	for _, id := range ids[1:] {
		got, bad := checkers[id].snapshot()
		if len(bad) > 0 {
			t.Fatalf("replica %s broke apply contract: %v (seed %d)", id, bad, seed)
		}
		if len(got) != len(want) {
			t.Fatalf("replica %s applied %d ops, %s applied %d (seed %d, events %v)",
				id, len(got), ids[0], len(want), seed, inj.Events())
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("replica %s diverges at op %d: %q vs %q (seed %d)", id, i, got[i], want[i], seed)
			}
		}
	}
	counts := make(map[string]int)
	for _, id := range want {
		counts[id]++
	}
	for _, id := range acked {
		if counts[id] != 1 {
			t.Fatalf("acked op %q applied %d times after dedup (seed %d, events %v)", id, counts[id], seed, inj.Events())
		}
	}
}

// TestChaosShardBatched runs the chain's batch-first submission path —
// mempool, batched PBFT requests, pipelined instances — under the
// crash/isolation schedule, with every transaction also submitted a
// second time to exercise duplicate suppression under faults. Chains
// must stay identical, audit-clean, and exactly-once.
func TestChaosShardBatched(t *testing.T) {
	seed := chaosSeed(t)
	logSeed(t, seed)
	net := netsim.New(faultyConfig(seed, 0))
	defer net.Close()

	shard, err := chain.NewShard(net, chain.ShardConfig{
		Name:    "s0",
		F:       1,
		Timeout: 25 * time.Second,
		PBFT:    pbft.Options{ViewTimeout: 250 * time.Millisecond},
		Mempool: mempool.Config{
			Cap:           1024,
			BatchSize:     8,
			FlushInterval: 2 * time.Millisecond,
			MaxInFlight:   4,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = shard.Close() }()
	var targets []Target
	for _, r := range shard.Replicas() {
		r := r
		targets = append(targets, Target{ID: r.ID(), Crash: r.Crash, Restart: r.Restart})
	}
	inj := NewInjector(net, targets, Options{MaxDown: 1, Seed: seed})
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() { defer close(done); inj.Run(stop, 25*time.Millisecond) }()

	// Unique keys: under failover retries a delayed batch may commit
	// after a younger one, so cross-batch per-key write order is only
	// guaranteed on the stable-primary path (asserted in the chain
	// package tests). Here the contract under faults is exactly-once,
	// identical audit-clean chains, and collapsed duplicates.
	const ops = 30
	var chans []<-chan chain.Result
	for i := 0; i < ops; i++ {
		tx := chain.Tx{
			ID:    fmt.Sprintf("ctx-%d", i),
			Kind:  chain.TxPut,
			Key:   fmt.Sprintf("key-%d", i),
			Value: []byte(fmt.Sprintf("val-%d", i)),
		}
		// Submit twice: the duplicate must be collapsed by the mempool,
		// not proposed again.
		chans = append(chans, shard.SubmitAsync(tx), shard.SubmitAsync(tx))
		time.Sleep(4 * time.Millisecond)
	}
	for i, ch := range chans {
		select {
		case res := <-ch:
			if res.Err != nil {
				t.Fatalf("submission %d: %v (seed %d, events %v)", i, res.Err, seed, inj.Events())
			}
		case <-time.After(60 * time.Second):
			t.Fatalf("submission %d never resolved (seed %d, events %v)", i, seed, inj.Events())
		}
	}
	close(stop)
	<-done
	if err := inj.HealAll(); err != nil {
		t.Fatalf("%v (seed %d)", err, seed)
	}

	// Post-heal liveness: fresh transactions drive the healed cluster.
	// Their request broadcasts arm view-change timers on every backup, so
	// a sequence gap torn by the schedule (a partially-prepared instance
	// whose primary died) gets view-changed away instead of stalling the
	// executed prefix forever.
	const post = 3
	for i := 0; i < post; i++ {
		select {
		case res := <-shard.SubmitAsync(chain.Tx{
			ID:    fmt.Sprintf("post-%d", i),
			Kind:  chain.TxPut,
			Key:   fmt.Sprintf("post-key-%d", i),
			Value: []byte("post"),
		}):
			if res.Err != nil {
				t.Fatalf("post-heal submit %d: %v (seed %d, events %v)", i, res.Err, seed, inj.Events())
			}
		case <-time.After(60 * time.Second):
			t.Fatalf("post-heal submit %d never resolved (seed %d, events %v)", i, seed, inj.Events())
		}
	}

	// Convergence: every replica executes the full history.
	replicas := shard.Replicas()
	deadline := time.Now().Add(30 * time.Second)
	for {
		var max uint64
		allEq := true
		for _, r := range replicas {
			if e := r.Executed(); e > max {
				max = e
			}
		}
		for _, r := range replicas {
			if r.Executed() != max {
				allEq = false
			}
		}
		if allEq && max > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("shard never converged (seed %d, events %v)", seed, inj.Events())
		}
		for _, r := range replicas {
			r.Sync()
		}
		time.Sleep(50 * time.Millisecond)
	}

	// Safety: identical audit-clean chains, each tx ID exactly once, and
	// per-key submission order preserved (last write per key wins).
	peers := shard.Peers()
	ref := peers[0].Blocks()
	if bad, err := chain.VerifyBlocks(ref); err != nil {
		t.Fatalf("peer %s chain fails audit at block %d: %v (seed %d)", peers[0].ID(), bad, err, seed)
	}
	counts := make(map[string]int)
	for _, b := range ref {
		for _, tx := range b.Txs {
			counts[tx.ID]++
		}
	}
	for i := 0; i < ops; i++ {
		if c := counts[fmt.Sprintf("ctx-%d", i)]; c != 1 {
			t.Fatalf("tx ctx-%d applied %d times (seed %d, events %v)", i, c, seed, inj.Events())
		}
	}
	for _, p := range peers[1:] {
		blocks := p.Blocks()
		if len(blocks) != len(ref) {
			t.Fatalf("peer %s height %d, %s height %d (seed %d, events %v)",
				p.ID(), len(blocks), peers[0].ID(), len(ref), seed, inj.Events())
		}
		if len(ref) > 0 && blocks[len(blocks)-1].Hash != ref[len(ref)-1].Hash {
			t.Fatalf("peer %s final block hash diverges (seed %d)", p.ID(), seed)
		}
		if bad, err := chain.VerifyBlocks(blocks); err != nil {
			t.Fatalf("peer %s chain fails audit at block %d: %v (seed %d)", p.ID(), bad, err, seed)
		}
	}
	for _, p := range peers {
		for i := 0; i < ops; i++ {
			want := fmt.Sprintf("val-%d", i)
			got, err := p.Get(fmt.Sprintf("key-%d", i))
			if err != nil || string(got) != want {
				t.Fatalf("peer %s key-%d = %q, %v; want %q (seed %d, events %v)",
					p.ID(), i, got, err, want, seed, inj.Events())
			}
		}
	}
	// The mempool must actually have batched and collapsed duplicates.
	st := shard.Stats()
	if st.Batches.Batches == 0 || st.Batches.Ops != ops+post {
		t.Fatalf("batch stats = %+v, want %d ops batched (seed %d)", st.Batches, ops+post, seed)
	}
	if st.Pool.DupPending+st.Pool.DupExecuted != ops {
		t.Fatalf("dup counters = %d+%d, want %d collapsed duplicates (seed %d)",
			st.Pool.DupPending, st.Pool.DupExecuted, ops, seed)
	}
}
