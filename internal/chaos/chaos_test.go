package chaos

import (
	"fmt"
	"os"
	"strconv"
	"sync"
	"testing"
	"time"

	"prever/internal/chain"
	"prever/internal/netsim"
	"prever/internal/paxos"
	"prever/internal/pbft"
)

// chaosSeed returns the schedule seed: CHAOS_SEED if set (to replay a
// failing run), otherwise the clock. Every test logs the seed it used.
func chaosSeed(t *testing.T) int64 {
	t.Helper()
	if s := os.Getenv("CHAOS_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("bad CHAOS_SEED %q: %v", s, err)
		}
		return v
	}
	return time.Now().UnixNano()
}

func logSeed(t *testing.T, seed int64) {
	t.Helper()
	t.Logf("chaos seed: %d (replay with CHAOS_SEED=%d)", seed, seed)
}

// faultyConfig is the lossy-network profile the chaos suite runs under:
// jittered latency, a little loss, duplicates, and reordering.
func faultyConfig(seed int64, drop float64) netsim.Config {
	return netsim.Config{
		Jitter:        200 * time.Microsecond,
		DropRate:      drop,
		DuplicateRate: 0.05,
		ReorderRate:   0.1,
		ReorderDelay:  time.Millisecond,
		Seed:          seed,
	}
}

// slotChecker verifies the paxos apply contract under chaos: contiguous
// slots, each applied exactly once.
type slotChecker struct {
	mu     sync.Mutex
	next   uint64
	values []string
	bad    []string
}

func (c *slotChecker) apply(slot uint64, value []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if slot != c.next {
		c.bad = append(c.bad, fmt.Sprintf("applied slot %d, expected %d", slot, c.next))
		return
	}
	c.next++
	c.values = append(c.values, string(value))
}

func (c *slotChecker) snapshot() (values, bad []string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.values...), append([]string(nil), c.bad...)
}

func TestChaosPaxos(t *testing.T) {
	seed := chaosSeed(t)
	logSeed(t, seed)
	net := netsim.New(faultyConfig(seed, 0.01))
	defer net.Close()

	ids := []string{"pax0", "pax1", "pax2", "pax3", "pax4"}
	checkers := make(map[string]*slotChecker)
	var replicas []*paxos.Replica
	var targets []Target
	for _, id := range ids {
		sc := &slotChecker{}
		checkers[id] = sc
		r, err := paxos.NewReplica(net, id, ids, sc.apply)
		if err != nil {
			t.Fatal(err)
		}
		replicas = append(replicas, r)
		targets = append(targets, Target{ID: id, Crash: r.Crash, Restart: r.Restart})
	}
	client, err := paxos.NewClient(net, replicas, paxos.ClientOptions{
		TryTimeout:   300 * time.Millisecond,
		ElectTimeout: 500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	inj := NewInjector(net, targets, Options{MaxDown: 2, Seed: seed})
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() { defer close(done); inj.Run(stop, 20*time.Millisecond) }()

	const ops = 40
	var acked []string
	for i := 0; i < ops; i++ {
		v := fmt.Sprintf("op-%d", i)
		if _, err := client.Propose([]byte(v), 20*time.Second); err != nil {
			t.Fatalf("propose %d: %v (seed %d, events %v)", i, err, seed, inj.Events())
		}
		acked = append(acked, v)
		time.Sleep(5 * time.Millisecond)
	}
	close(stop)
	<-done
	if err := inj.HealAll(); err != nil {
		t.Fatalf("%v (seed %d)", err, seed)
	}

	// Liveness: the healed cluster must keep accepting proposals.
	for i := 0; i < 3; i++ {
		v := fmt.Sprintf("post-%d", i)
		if _, err := client.Propose([]byte(v), 20*time.Second); err != nil {
			t.Fatalf("post-heal propose %d: %v (seed %d)", i, err, seed)
		}
		acked = append(acked, v)
	}
	// Convergence: every replica's applied stream must contain every
	// acked value and all streams must be identical. Waiting on applied
	// heights alone is not enough — replicas can agree on a floor while
	// slots above it are still uncommitted. Elections are retried inside
	// the loop (rotating candidates): a fresh election fills crash-torn
	// gaps with no-ops and re-broadcasts adopted and chosen values, which
	// is the only retransmission path for an accept lost in flight.
	converged := func() bool {
		want, _ := checkers[ids[0]].snapshot()
		have := make(map[string]bool, len(want))
		for _, v := range want {
			have[v] = true
		}
		for _, v := range acked {
			if !have[v] {
				return false
			}
		}
		for _, id := range ids[1:] {
			got, _ := checkers[id].snapshot()
			if len(got) != len(want) {
				return false
			}
			for i := range want {
				if got[i] != want[i] {
					return false
				}
			}
		}
		return true
	}
	deadline := time.Now().Add(30 * time.Second)
	for attempt := 0; !converged(); attempt++ {
		if time.Now().After(deadline) {
			var state []string
			for _, r := range replicas {
				state = append(state, fmt.Sprintf("%s=%d", r.ID(), r.Applied()))
			}
			t.Fatalf("replicas never converged: %v (seed %d, events %v)", state, seed, inj.Events())
		}
		_ = replicas[attempt%len(replicas)].BecomeLeader(2 * time.Second)
		for _, r := range replicas {
			r.Sync()
		}
		time.Sleep(100 * time.Millisecond)
	}

	// Safety: contiguous exactly-once apply, identical logs everywhere,
	// and every acked value present. (A timeout retry may legally commit
	// a value into more than one slot; acked means at-least-once here,
	// with per-slot exactly-once.)
	want, bad := checkers[ids[0]].snapshot()
	if len(bad) > 0 {
		t.Fatalf("replica %s broke apply contract: %v (seed %d)", ids[0], bad, seed)
	}
	for _, id := range ids[1:] {
		got, bad := checkers[id].snapshot()
		if len(bad) > 0 {
			t.Fatalf("replica %s broke apply contract: %v (seed %d)", id, bad, seed)
		}
		if len(got) != len(want) {
			t.Fatalf("replica %s applied %d values, %s applied %d (seed %d)", id, len(got), ids[0], len(want), seed)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("replica %s diverges at slot %d: %q vs %q (seed %d)", id, i, got[i], want[i], seed)
			}
		}
	}
	present := make(map[string]bool, len(want))
	for _, v := range want {
		present[v] = true
	}
	for _, v := range acked {
		if !present[v] {
			t.Fatalf("acked value %q missing from converged log (seed %d, events %v)", v, seed, inj.Events())
		}
	}
}

// seqChecker verifies the pbft apply contract under chaos: strictly
// increasing sequence numbers, each op applied exactly once per replica.
type seqChecker struct {
	mu      sync.Mutex
	lastSeq uint64
	started bool
	ops     []string
	bad     []string
}

func (c *seqChecker) apply(seq uint64, batch []pbft.Request) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.started && seq <= c.lastSeq {
		c.bad = append(c.bad, fmt.Sprintf("seq %d after %d", seq, c.lastSeq))
	}
	c.started = true
	c.lastSeq = seq
	for _, req := range batch {
		c.ops = append(c.ops, string(req.Op))
	}
}

func (c *seqChecker) snapshot() (ops, bad []string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.ops...), append([]string(nil), c.bad...)
}

func TestChaosPBFT(t *testing.T) {
	seed := chaosSeed(t)
	logSeed(t, seed)
	// DropRate 0: PBFT has no retransmission layer, so chaos comes from
	// crashes, isolation, duplicates, and reordering instead of loss.
	net := netsim.New(faultyConfig(seed, 0))
	defer net.Close()

	const f = 1
	ids := []string{"bft0", "bft1", "bft2", "bft3"}
	checkers := make(map[string]*seqChecker)
	var replicas []*pbft.Replica
	var targets []Target
	for _, id := range ids {
		sc := &seqChecker{}
		checkers[id] = sc
		r, err := pbft.NewReplica(net, id, ids, f, sc.apply, pbft.Options{
			ViewTimeout: 250 * time.Millisecond,
			BatchSize:   4,
			BatchDelay:  2 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		replicas = append(replicas, r)
		targets = append(targets, Target{ID: id, Crash: r.Crash, Restart: r.Restart})
	}
	client, err := pbft.NewClient(net, replicas, "chaos-cli", pbft.ClientOptions{
		TryTimeout: 600 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	inj := NewInjector(net, targets, Options{MaxDown: 1, Seed: seed})
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() { defer close(done); inj.Run(stop, 20*time.Millisecond) }()

	const ops = 30
	var acked []string
	for i := 0; i < ops; i++ {
		op := fmt.Sprintf("op-%d", i)
		if err := client.Submit([]byte(op), 25*time.Second); err != nil {
			t.Fatalf("submit %d: %v (seed %d, events %v)", i, err, seed, inj.Events())
		}
		acked = append(acked, op)
		time.Sleep(5 * time.Millisecond)
	}
	close(stop)
	<-done
	if err := inj.HealAll(); err != nil {
		t.Fatalf("%v (seed %d)", err, seed)
	}

	// Liveness after heal.
	for i := 0; i < 3; i++ {
		op := fmt.Sprintf("post-%d", i)
		if err := client.Submit([]byte(op), 25*time.Second); err != nil {
			t.Fatalf("post-heal submit %d: %v (seed %d)", i, err, seed)
		}
		acked = append(acked, op)
	}

	// Convergence: all replicas execute the same sequence count.
	deadline := time.Now().Add(15 * time.Second)
	for {
		var max uint64
		allEq := true
		for _, r := range replicas {
			if e := r.Executed(); e > max {
				max = e
			}
		}
		for _, r := range replicas {
			if r.Executed() != max {
				allEq = false
			}
		}
		if allEq && max > 0 {
			break
		}
		if time.Now().After(deadline) {
			var state []string
			for _, r := range replicas {
				state = append(state, fmt.Sprintf("%s=%d", r.ID(), r.Executed()))
			}
			t.Fatalf("replicas never converged: %v (seed %d, events %v)", state, seed, inj.Events())
		}
		for _, r := range replicas {
			r.Sync()
		}
		time.Sleep(50 * time.Millisecond)
	}

	// Safety: monotone seqs, identical op streams, every acked op exactly
	// once (client-seq dedup makes retries exactly-once in pbft).
	want, bad := checkers[ids[0]].snapshot()
	if len(bad) > 0 {
		t.Fatalf("replica %s broke seq contract: %v (seed %d)", ids[0], bad, seed)
	}
	for _, id := range ids[1:] {
		got, bad := checkers[id].snapshot()
		if len(bad) > 0 {
			t.Fatalf("replica %s broke seq contract: %v (seed %d)", id, bad, seed)
		}
		if len(got) != len(want) {
			t.Fatalf("replica %s applied %d ops, %s applied %d (seed %d, events %v)",
				id, len(got), ids[0], len(want), seed, inj.Events())
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("replica %s diverges at %d: %q vs %q (seed %d)", id, i, got[i], want[i], seed)
			}
		}
	}
	counts := make(map[string]int)
	for _, op := range want {
		counts[op]++
	}
	for _, op := range acked {
		if counts[op] != 1 {
			t.Fatalf("acked op %q applied %d times (seed %d, events %v)", op, counts[op], seed, inj.Events())
		}
	}
}

func TestChaosChain(t *testing.T) {
	seed := chaosSeed(t)
	logSeed(t, seed)
	net := netsim.New(faultyConfig(seed, 0))
	defer net.Close()

	shard, err := chain.NewShard(net, chain.ShardConfig{
		Name:    "s0",
		F:       1,
		Timeout: 25 * time.Second,
		PBFT:    pbft.Options{ViewTimeout: 250 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	var targets []Target
	for _, r := range shard.Replicas() {
		r := r
		targets = append(targets, Target{ID: r.ID(), Crash: r.Crash, Restart: r.Restart})
	}
	inj := NewInjector(net, targets, Options{MaxDown: 1, Seed: seed})
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() { defer close(done); inj.Run(stop, 25*time.Millisecond) }()

	const ops = 20
	for i := 0; i < ops; i++ {
		tx := chain.Tx{Kind: chain.TxPut, Key: fmt.Sprintf("key-%d", i), Value: []byte(fmt.Sprintf("val-%d", i))}
		if res := <-shard.SubmitAsync(tx); res.Err != nil {
			t.Fatalf("submit %d: %v (seed %d, events %v)", i, res.Err, seed, inj.Events())
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(stop)
	<-done
	if err := inj.HealAll(); err != nil {
		t.Fatalf("%v (seed %d)", err, seed)
	}

	// Convergence: every replica executes the full history.
	replicas := shard.Replicas()
	deadline := time.Now().Add(15 * time.Second)
	for {
		var max uint64
		allEq := true
		for _, r := range replicas {
			if e := r.Executed(); e > max {
				max = e
			}
		}
		for _, r := range replicas {
			if r.Executed() != max {
				allEq = false
			}
		}
		if allEq && max > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("shard never converged (seed %d, events %v)", seed, inj.Events())
		}
		for _, r := range replicas {
			r.Sync()
		}
		time.Sleep(50 * time.Millisecond)
	}

	// Safety: identical chains on every peer, audit-clean, state correct.
	peers := shard.Peers()
	ref := peers[0].Blocks()
	if bad, err := chain.VerifyBlocks(ref); err != nil {
		t.Fatalf("peer %s chain fails audit at block %d: %v (seed %d)", peers[0].ID(), bad, err, seed)
	}
	for _, p := range peers[1:] {
		blocks := p.Blocks()
		if len(blocks) != len(ref) {
			t.Fatalf("peer %s height %d, %s height %d (seed %d, events %v)",
				p.ID(), len(blocks), peers[0].ID(), len(ref), seed, inj.Events())
		}
		if len(ref) > 0 && blocks[len(blocks)-1].Hash != ref[len(ref)-1].Hash {
			t.Fatalf("peer %s final block hash diverges (seed %d)", p.ID(), seed)
		}
		if bad, err := chain.VerifyBlocks(blocks); err != nil {
			t.Fatalf("peer %s chain fails audit at block %d: %v (seed %d)", p.ID(), bad, err, seed)
		}
	}
	for _, p := range peers {
		for i := 0; i < ops; i++ {
			want := fmt.Sprintf("val-%d", i)
			got, err := p.Get(fmt.Sprintf("key-%d", i))
			if err != nil || string(got) != want {
				t.Fatalf("peer %s key-%d = %q, %v; want %q (seed %d)", p.ID(), i, got, err, want, seed)
			}
		}
	}
}
