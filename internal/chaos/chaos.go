// Package chaos drives randomized fault schedules — crashes, restarts,
// network isolation, duplicate and reordered delivery — against the
// consensus substrates (paxos, pbft, chain) and checks their safety and
// liveness contracts: linearized apply order, exactly-once application,
// and eventual progress after the faults heal.
//
// The schedule is seeded so a failing run can be replayed: every test
// logs its seed and honours the CHAOS_SEED environment variable. The
// replay is best-effort — the action sequence is deterministic in the
// seed, but which node an action hits also depends on cluster timing.
package chaos

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"prever/internal/netsim"
)

// Target is one fault-injectable consensus node.
type Target struct {
	ID      string
	Crash   func() error
	Restart func() error
}

// Options bounds an injector.
type Options struct {
	// MaxDown caps how many nodes may be unavailable (crashed or
	// isolated) at once, so a quorum always stays reachable.
	MaxDown int
	// Seed makes the action schedule reproducible.
	Seed int64
}

// Injector performs one random fault action per Step, never exceeding
// MaxDown simultaneously unavailable nodes. Every action is appended to
// an event log for post-mortem of a failing schedule.
type Injector struct {
	net  *netsim.Network
	opts Options

	mu       sync.Mutex
	rng      *rand.Rand
	targets  []Target
	crashed  map[string]bool
	isolated map[string]bool
	step     int
	events   []string
}

// NewInjector builds an injector over the given nodes.
func NewInjector(net *netsim.Network, targets []Target, opts Options) *Injector {
	if opts.MaxDown <= 0 {
		opts.MaxDown = 1
	}
	return &Injector{
		net:      net,
		opts:     opts,
		rng:      rand.New(rand.NewSource(opts.Seed)),
		targets:  append([]Target(nil), targets...),
		crashed:  make(map[string]bool),
		isolated: make(map[string]bool),
	}
}

// downLocked counts unavailable nodes: crashed or isolated (a node can
// be both; it counts once).
func (in *Injector) downLocked() int {
	n := len(in.crashed)
	for id := range in.isolated {
		if !in.crashed[id] {
			n++
		}
	}
	return n
}

func (in *Injector) pickLocked(ok func(Target) bool) *Target {
	var cands []*Target
	for i := range in.targets {
		if ok(in.targets[i]) {
			cands = append(cands, &in.targets[i])
		}
	}
	if len(cands) == 0 {
		return nil
	}
	return cands[in.rng.Intn(len(cands))]
}

func (in *Injector) logLocked(format string, args ...any) {
	in.events = append(in.events, fmt.Sprintf("%d: %s", in.step, fmt.Sprintf(format, args...)))
}

// applyPartitionLocked pushes the isolation set into the network: each
// isolated node gets its own partition group, everyone else stays
// connected.
func (in *Injector) applyPartitionLocked() {
	if len(in.isolated) == 0 {
		in.net.Heal()
		return
	}
	var groups [][]string
	for id := range in.isolated {
		groups = append(groups, []string{id})
	}
	in.net.Partition(groups...)
}

// Step performs one random fault action: crash, restart, isolate, or
// heal-all-partitions. Actions that would exceed MaxDown are skipped.
func (in *Injector) Step() {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.step++
	switch in.rng.Intn(4) {
	case 0: // crash a live node
		t := in.pickLocked(func(t Target) bool {
			if in.crashed[t.ID] {
				return false
			}
			if !in.isolated[t.ID] && in.downLocked() >= in.opts.MaxDown {
				return false
			}
			return true
		})
		if t == nil {
			return
		}
		if err := t.Crash(); err != nil {
			in.logLocked("crash %s failed: %v", t.ID, err)
			return
		}
		in.crashed[t.ID] = true
		in.logLocked("crash %s", t.ID)
	case 1: // restart a crashed node
		t := in.pickLocked(func(t Target) bool { return in.crashed[t.ID] })
		if t == nil {
			return
		}
		if err := t.Restart(); err != nil {
			in.logLocked("restart %s failed: %v", t.ID, err)
			return
		}
		delete(in.crashed, t.ID)
		in.logLocked("restart %s", t.ID)
	case 2: // isolate a connected node
		t := in.pickLocked(func(t Target) bool {
			if in.isolated[t.ID] {
				return false
			}
			if !in.crashed[t.ID] && in.downLocked() >= in.opts.MaxDown {
				return false
			}
			return true
		})
		if t == nil {
			return
		}
		in.isolated[t.ID] = true
		in.applyPartitionLocked()
		in.logLocked("isolate %s", t.ID)
	case 3: // heal all partitions
		if len(in.isolated) == 0 {
			return
		}
		in.isolated = make(map[string]bool)
		in.applyPartitionLocked()
		in.logLocked("heal partitions")
	}
}

// Run steps the schedule every interval until stop closes.
func (in *Injector) Run(stop <-chan struct{}, every time.Duration) {
	tick := time.NewTicker(every)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
			in.Step()
		}
	}
}

// HealAll ends the schedule: partitions are removed and every crashed
// node is restarted (which triggers its catch-up sync).
func (in *Injector) HealAll() error {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.isolated = make(map[string]bool)
	in.net.Heal()
	for _, t := range in.targets {
		if !in.crashed[t.ID] {
			continue
		}
		if err := t.Restart(); err != nil {
			return fmt.Errorf("chaos: heal restart %s: %w", t.ID, err)
		}
		delete(in.crashed, t.ID)
		in.logLocked("heal restart %s", t.ID)
	}
	return nil
}

// Events returns the action log for schedule post-mortems.
func (in *Injector) Events() []string {
	in.mu.Lock()
	defer in.mu.Unlock()
	return append([]string(nil), in.events...)
}
