package chaos

import (
	"encoding/json"
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"prever/internal/netsim"
	"prever/internal/paxos"
	"prever/internal/pbft"
)

// The durable chaos schedules harden the recover-from-disk path: "crash"
// destroys the replica object entirely (Crash + CloseStorage — nothing
// survives but the data directory) and "restart" rebuilds the replica
// from disk with a FRESH checker restored through the Snapshotter, the
// way a process restart would. The safety contract is the same as the
// in-memory schedules — contiguous exactly-once apply, identical
// streams, no acked op lost — but now it must hold through WAL replay
// and snapshot restore instead of live memory.

// durableSlotChecker is a slotChecker that round-trips through a
// Snapshotter blob, so a recovered incarnation resumes the contract
// where the snapshot left it.
type durableSlotChecker struct {
	slotChecker
}

func (c *durableSlotChecker) Snapshot() ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return json.Marshal(struct {
		Next   uint64   `json:"next"`
		Values []string `json:"values"`
	}{c.next, c.values})
}

func (c *durableSlotChecker) Restore(data []byte) error {
	var s struct {
		Next   uint64   `json:"next"`
		Values []string `json:"values"`
	}
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.next = s.Next
	c.values = s.Values
	return nil
}

// durablePaxosNode owns one replica incarnation and its checker; kill
// and recover swap both under the lock.
type durablePaxosNode struct {
	mu  sync.Mutex
	id  string
	dir string
	r   *paxos.Replica
	sc  *durableSlotChecker
}

func (n *durablePaxosNode) replica() *paxos.Replica {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.r
}

func (n *durablePaxosNode) checker() *durableSlotChecker {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.sc
}

func TestChaosPaxosRecoverFromDisk(t *testing.T) {
	seed := chaosSeed(t)
	logSeed(t, seed)
	net := netsim.New(faultyConfig(seed, 0.01))
	defer net.Close()
	base := t.TempDir()

	ids := []string{"dpx0", "dpx1", "dpx2", "dpx3", "dpx4"}
	nodes := make(map[string]*durablePaxosNode)
	start := func(id string) (*paxos.Replica, *durableSlotChecker, error) {
		sc := &durableSlotChecker{}
		r, err := paxos.NewDurableReplica(net, id, ids, sc.apply, paxos.DurableOptions{
			Dir:           filepath.Join(base, id),
			App:           sc,
			SnapshotEvery: 8,
		})
		return r, sc, err
	}
	currentReplicas := func() []*paxos.Replica {
		out := make([]*paxos.Replica, 0, len(ids))
		for _, id := range ids {
			out = append(out, nodes[id].replica())
		}
		return out
	}

	var replicas []*paxos.Replica
	for _, id := range ids {
		r, sc, err := start(id)
		if err != nil {
			t.Fatal(err)
		}
		nodes[id] = &durablePaxosNode{id: id, dir: filepath.Join(base, id), r: r, sc: sc}
		replicas = append(replicas, r)
	}
	client, err := paxos.NewClient(net, replicas, paxos.ClientOptions{
		TryTimeout:   300 * time.Millisecond,
		ElectTimeout: 500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	var targets []Target
	for _, id := range ids {
		node := nodes[id]
		targets = append(targets, Target{
			ID: id,
			Crash: func() error {
				node.mu.Lock()
				defer node.mu.Unlock()
				if err := node.r.Crash(); err != nil {
					return err
				}
				return node.r.CloseStorage()
			},
			Restart: func() error {
				r, sc, err := start(node.id)
				if err != nil {
					return fmt.Errorf("recover %s from disk: %w", node.id, err)
				}
				node.mu.Lock()
				node.r, node.sc = r, sc
				node.mu.Unlock()
				client.SetReplicas(currentReplicas())
				return nil
			},
		})
	}

	inj := NewInjector(net, targets, Options{MaxDown: 2, Seed: seed})
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() { defer close(done); inj.Run(stop, 20*time.Millisecond) }()

	const ops = 40
	var acked []string
	for i := 0; i < ops; i++ {
		v := fmt.Sprintf("op-%d", i)
		if _, err := client.Propose([]byte(v), 20*time.Second); err != nil {
			t.Fatalf("propose %d: %v (seed %d, events %v)", i, err, seed, inj.Events())
		}
		acked = append(acked, v)
		time.Sleep(5 * time.Millisecond)
	}
	close(stop)
	<-done
	if err := inj.HealAll(); err != nil {
		t.Fatalf("%v (seed %d)", err, seed)
	}

	// Liveness through recovered-from-disk replicas.
	for i := 0; i < 3; i++ {
		v := fmt.Sprintf("post-%d", i)
		if _, err := client.Propose([]byte(v), 20*time.Second); err != nil {
			t.Fatalf("post-heal propose %d: %v (seed %d, events %v)", i, err, seed, inj.Events())
		}
		acked = append(acked, v)
	}

	// Convergence, as in TestChaosPaxos but against the current
	// incarnations.
	converged := func() bool {
		want, _ := nodes[ids[0]].checker().snapshot()
		have := make(map[string]bool, len(want))
		for _, v := range want {
			have[v] = true
		}
		for _, v := range acked {
			if !have[v] {
				return false
			}
		}
		for _, id := range ids[1:] {
			got, _ := nodes[id].checker().snapshot()
			if len(got) != len(want) {
				return false
			}
			for i := range want {
				if got[i] != want[i] {
					return false
				}
			}
		}
		return true
	}
	deadline := time.Now().Add(30 * time.Second)
	for attempt := 0; !converged(); attempt++ {
		if time.Now().After(deadline) {
			var state []string
			for _, id := range ids {
				vals, bad := nodes[id].checker().snapshot()
				missing := 0
				have := make(map[string]bool, len(vals))
				for _, v := range vals {
					have[v] = true
				}
				for _, v := range acked {
					if !have[v] {
						missing++
					}
				}
				state = append(state, fmt.Sprintf("%s: applied=%d stream=%d missingAcked=%d bad=%v",
					id, nodes[id].replica().Applied(), len(vals), missing, bad))
			}
			t.Fatalf("recovered replicas never converged:\n%s\n(seed %d, events %v)",
				strings.Join(state, "\n"), seed, inj.Events())
		}
		rs := currentReplicas()
		_ = rs[attempt%len(rs)].BecomeLeader(2 * time.Second)
		for _, r := range rs {
			r.Sync()
		}
		time.Sleep(100 * time.Millisecond)
	}

	// Safety across crash-recover cycles: contiguous exactly-once apply
	// on every current incarnation, identical streams, every acked op
	// present.
	want, bad := nodes[ids[0]].checker().snapshot()
	if len(bad) > 0 {
		t.Fatalf("replica %s broke apply contract: %v (seed %d, events %v)", ids[0], bad, seed, inj.Events())
	}
	for _, id := range ids[1:] {
		got, bad := nodes[id].checker().snapshot()
		if len(bad) > 0 {
			t.Fatalf("replica %s broke apply contract: %v (seed %d, events %v)", id, bad, seed, inj.Events())
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("replica %s diverges at slot %d: %q vs %q (seed %d)", id, i, got[i], want[i], seed)
			}
		}
	}
	present := make(map[string]bool, len(want))
	for _, v := range want {
		present[v] = true
	}
	for _, v := range acked {
		if !present[v] {
			t.Fatalf("acked value %q lost across recovery (seed %d, events %v)", v, seed, inj.Events())
		}
	}
}

// durableSeqChecker is a seqChecker that round-trips through a
// Snapshotter blob.
type durableSeqChecker struct {
	seqChecker
}

func (c *durableSeqChecker) Snapshot() ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return json.Marshal(struct {
		LastSeq uint64   `json:"lastSeq"`
		Started bool     `json:"started"`
		Ops     []string `json:"ops"`
	}{c.lastSeq, c.started, c.ops})
}

func (c *durableSeqChecker) Restore(data []byte) error {
	var s struct {
		LastSeq uint64   `json:"lastSeq"`
		Started bool     `json:"started"`
		Ops     []string `json:"ops"`
	}
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.lastSeq = s.LastSeq
	c.started = s.Started
	c.ops = s.Ops
	return nil
}

type durablePBFTChaosNode struct {
	mu  sync.Mutex
	id  string
	dir string
	r   *pbft.Replica
	sc  *durableSeqChecker
}

func (n *durablePBFTChaosNode) replica() *pbft.Replica {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.r
}

func (n *durablePBFTChaosNode) checker() *durableSeqChecker {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.sc
}

func TestChaosPBFTRecoverFromDisk(t *testing.T) {
	seed := chaosSeed(t)
	logSeed(t, seed)
	// DropRate 0 as in TestChaosPBFT: no retransmission layer.
	net := netsim.New(faultyConfig(seed, 0))
	defer net.Close()
	base := t.TempDir()

	const f = 1
	ids := []string{"dbft0", "dbft1", "dbft2", "dbft3"}
	opts := pbft.Options{
		ViewTimeout: 250 * time.Millisecond,
		BatchSize:   4,
		BatchDelay:  2 * time.Millisecond,
	}
	nodes := make(map[string]*durablePBFTChaosNode)
	start := func(id string) (*pbft.Replica, *durableSeqChecker, error) {
		sc := &durableSeqChecker{}
		r, err := pbft.NewDurableReplica(net, id, ids, f, sc.apply, opts, pbft.DurableOptions{
			Dir:           filepath.Join(base, id),
			App:           sc,
			SnapshotEvery: 8,
		})
		return r, sc, err
	}
	currentReplicas := func() []*pbft.Replica {
		out := make([]*pbft.Replica, 0, len(ids))
		for _, id := range ids {
			out = append(out, nodes[id].replica())
		}
		return out
	}

	var replicas []*pbft.Replica
	for _, id := range ids {
		r, sc, err := start(id)
		if err != nil {
			t.Fatal(err)
		}
		nodes[id] = &durablePBFTChaosNode{id: id, dir: filepath.Join(base, id), r: r, sc: sc}
		replicas = append(replicas, r)
	}
	client, err := pbft.NewClient(net, replicas, "chaos-durable-cli", pbft.ClientOptions{
		TryTimeout: 600 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	var targets []Target
	for _, id := range ids {
		node := nodes[id]
		targets = append(targets, Target{
			ID: id,
			Crash: func() error {
				node.mu.Lock()
				defer node.mu.Unlock()
				if err := node.r.Crash(); err != nil {
					return err
				}
				return node.r.CloseStorage()
			},
			Restart: func() error {
				r, sc, err := start(node.id)
				if err != nil {
					return fmt.Errorf("recover %s from disk: %w", node.id, err)
				}
				node.mu.Lock()
				node.r, node.sc = r, sc
				node.mu.Unlock()
				client.SetReplicas(currentReplicas())
				return nil
			},
		})
	}

	inj := NewInjector(net, targets, Options{MaxDown: 1, Seed: seed})
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() { defer close(done); inj.Run(stop, 20*time.Millisecond) }()

	const ops = 30
	var acked []string
	for i := 0; i < ops; i++ {
		op := fmt.Sprintf("op-%d", i)
		if err := client.Submit([]byte(op), 25*time.Second); err != nil {
			t.Fatalf("submit %d: %v (seed %d, events %v)", i, err, seed, inj.Events())
		}
		acked = append(acked, op)
		time.Sleep(5 * time.Millisecond)
	}
	close(stop)
	<-done
	if err := inj.HealAll(); err != nil {
		t.Fatalf("%v (seed %d)", err, seed)
	}

	// Liveness through recovered-from-disk replicas.
	for i := 0; i < 3; i++ {
		op := fmt.Sprintf("post-%d", i)
		if err := client.Submit([]byte(op), 25*time.Second); err != nil {
			t.Fatalf("post-heal submit %d: %v (seed %d, events %v)", i, err, seed, inj.Events())
		}
		acked = append(acked, op)
	}

	// Convergence on executed counts across current incarnations.
	deadline := time.Now().Add(15 * time.Second)
	for {
		rs := currentReplicas()
		var max uint64
		allEq := true
		for _, r := range rs {
			if e := r.Executed(); e > max {
				max = e
			}
		}
		for _, r := range rs {
			if r.Executed() != max {
				allEq = false
			}
		}
		if allEq && max > 0 {
			break
		}
		if time.Now().After(deadline) {
			var state []string
			for _, r := range rs {
				state = append(state, fmt.Sprintf("%s=%d", r.ID(), r.Executed()))
			}
			t.Fatalf("recovered replicas never converged: %v (seed %d, events %v)", state, seed, inj.Events())
		}
		for _, r := range rs {
			r.Sync()
		}
		time.Sleep(50 * time.Millisecond)
	}

	// Safety: monotone seqs, identical streams, every acked op applied
	// exactly once on every recovered replica (dedup marks survive disk).
	want, bad := nodes[ids[0]].checker().snapshot()
	if len(bad) > 0 {
		t.Fatalf("replica %s broke seq contract: %v (seed %d, events %v)", ids[0], bad, seed, inj.Events())
	}
	for _, id := range ids[1:] {
		got, bad := nodes[id].checker().snapshot()
		if len(bad) > 0 {
			t.Fatalf("replica %s broke seq contract: %v (seed %d, events %v)", id, bad, seed, inj.Events())
		}
		if len(got) != len(want) {
			have := make(map[string]bool, len(got))
			for _, op := range got {
				have[op] = true
			}
			var missing []string
			for _, op := range want {
				if !have[op] {
					missing = append(missing, op)
				}
			}
			t.Fatalf("replica %s applied %d ops, %s applied %d; missing from %s: %v (seed %d, events %v)",
				id, len(got), ids[0], len(want), id, missing, seed, inj.Events())
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("replica %s diverges at %d: %q vs %q (seed %d)", id, i, got[i], want[i], seed)
			}
		}
	}
	counts := make(map[string]int)
	for _, op := range want {
		counts[op]++
	}
	for _, op := range acked {
		if counts[op] != 1 {
			t.Fatalf("acked op %q applied %d times after recovery (seed %d, events %v)", op, counts[op], seed, inj.Events())
		}
	}
}
