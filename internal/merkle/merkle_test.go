package merkle

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func leafData(i int) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(i))
	return b[:]
}

func buildTree(n int) *Tree {
	t := New()
	for i := 0; i < n; i++ {
		t.Append(leafData(i))
	}
	return t
}

func TestEmptyRoot(t *testing.T) {
	tr := New()
	if tr.Size() != 0 {
		t.Fatalf("empty tree size = %d", tr.Size())
	}
	if tr.Root() != EmptyRoot() {
		t.Fatalf("empty tree root mismatch")
	}
}

func TestSingleLeafRootIsLeafHash(t *testing.T) {
	tr := New()
	tr.Append([]byte("hello"))
	if tr.Root() != HashLeaf([]byte("hello")) {
		t.Fatalf("single-leaf root should equal the leaf hash")
	}
}

func TestLeafAndNodeDomainsDiffer(t *testing.T) {
	data := []byte("x")
	var asNode Hash
	copy(asNode[:], data)
	if HashLeaf(data) == HashChildren(asNode, asNode) {
		t.Fatalf("leaf and node hashing must be domain separated")
	}
}

func TestRootChangesOnAppend(t *testing.T) {
	tr := New()
	seen := map[Hash]bool{tr.Root(): true}
	for i := 0; i < 20; i++ {
		tr.Append(leafData(i))
		r := tr.Root()
		if seen[r] {
			t.Fatalf("root repeated after append %d", i)
		}
		seen[r] = true
	}
}

func TestRootAtMatchesIncrementalRoots(t *testing.T) {
	const n = 33
	tr := New()
	var roots []Hash
	for i := 0; i < n; i++ {
		tr.Append(leafData(i))
		roots = append(roots, tr.Root())
	}
	for i := 1; i <= n; i++ {
		if tr.RootAt(i) != roots[i-1] {
			t.Fatalf("RootAt(%d) does not match the root observed at that size", i)
		}
	}
}

func TestLeafHashAccessor(t *testing.T) {
	tr := buildTree(5)
	h, err := tr.LeafHash(3)
	if err != nil {
		t.Fatal(err)
	}
	if h != HashLeaf(leafData(3)) {
		t.Fatalf("LeafHash(3) mismatch")
	}
	if _, err := tr.LeafHash(5); err == nil {
		t.Fatalf("LeafHash out of range should error")
	}
	if _, err := tr.LeafHash(-1); err == nil {
		t.Fatalf("LeafHash(-1) should error")
	}
}

func TestInclusionAllSizesAllLeaves(t *testing.T) {
	const maxN = 40
	tr := buildTree(maxN)
	for n := 1; n <= maxN; n++ {
		root := tr.RootAt(n)
		for i := 0; i < n; i++ {
			p, err := tr.ProveInclusion(i, n)
			if err != nil {
				t.Fatalf("ProveInclusion(%d,%d): %v", i, n, err)
			}
			if err := VerifyInclusion(p, leafData(i), root); err != nil {
				t.Fatalf("VerifyInclusion(%d,%d): %v", i, n, err)
			}
		}
	}
}

func TestInclusionRejectsWrongLeaf(t *testing.T) {
	tr := buildTree(16)
	p, err := tr.ProveInclusion(4, 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyInclusion(p, leafData(5), tr.Root()); err == nil {
		t.Fatalf("proof for leaf 4 verified against leaf 5 data")
	}
}

func TestInclusionRejectsWrongRoot(t *testing.T) {
	tr := buildTree(16)
	p, _ := tr.ProveInclusion(4, 16)
	bad := tr.Root()
	bad[0] ^= 1
	if err := VerifyInclusion(p, leafData(4), bad); err == nil {
		t.Fatalf("proof verified against corrupted root")
	}
}

func TestInclusionRejectsTamperedPath(t *testing.T) {
	tr := buildTree(16)
	p, _ := tr.ProveInclusion(4, 16)
	if len(p.Path) == 0 {
		t.Fatal("expected non-empty path")
	}
	p.Path[0][0] ^= 1
	if err := VerifyInclusion(p, leafData(4), tr.Root()); err == nil {
		t.Fatalf("proof with tampered path verified")
	}
}

func TestInclusionRejectsTruncatedPath(t *testing.T) {
	tr := buildTree(16)
	p, _ := tr.ProveInclusion(4, 16)
	p.Path = p.Path[:len(p.Path)-1]
	if err := VerifyInclusion(p, leafData(4), tr.Root()); err == nil {
		t.Fatalf("truncated proof verified")
	}
}

func TestInclusionRejectsBadIndices(t *testing.T) {
	tr := buildTree(8)
	if _, err := tr.ProveInclusion(8, 8); err == nil {
		t.Fatalf("leaf index == size should error")
	}
	if _, err := tr.ProveInclusion(0, 9); err == nil {
		t.Fatalf("size beyond tree should error")
	}
	if _, err := tr.ProveInclusion(-1, 8); err == nil {
		t.Fatalf("negative leaf index should error")
	}
	p := InclusionProof{LeafIndex: 2, TreeSize: 0}
	if err := VerifyInclusion(p, leafData(2), tr.Root()); err == nil {
		t.Fatalf("zero tree size proof verified")
	}
}

func TestConsistencyAllSizePairs(t *testing.T) {
	const maxN = 32
	tr := buildTree(maxN)
	for m := 1; m <= maxN; m++ {
		for n := m; n <= maxN; n++ {
			p, err := tr.ProveConsistency(m, n)
			if err != nil {
				t.Fatalf("ProveConsistency(%d,%d): %v", m, n, err)
			}
			if err := VerifyConsistency(p, tr.RootAt(m), tr.RootAt(n)); err != nil {
				t.Fatalf("VerifyConsistency(%d,%d): %v", m, n, err)
			}
		}
	}
}

func TestConsistencyRejectsForkedHistory(t *testing.T) {
	// Build two trees sharing a 10-leaf prefix, then diverging.
	a := buildTree(20)
	b := New()
	for i := 0; i < 10; i++ {
		b.Append(leafData(i))
	}
	for i := 10; i < 20; i++ {
		b.Append([]byte(fmt.Sprintf("forked-%d", i)))
	}
	p, err := a.ProveConsistency(10, 20)
	if err != nil {
		t.Fatal(err)
	}
	// Proof from history A must not link A's old root to B's new root.
	if err := VerifyConsistency(p, a.RootAt(10), b.Root()); err == nil {
		t.Fatalf("consistency proof verified against a forked history")
	}
}

func TestConsistencyRejectsTamperedPath(t *testing.T) {
	tr := buildTree(20)
	p, _ := tr.ProveConsistency(7, 20)
	if len(p.Path) == 0 {
		t.Fatal("expected non-empty consistency path")
	}
	p.Path[0][0] ^= 1
	if err := VerifyConsistency(p, tr.RootAt(7), tr.Root()); err == nil {
		t.Fatalf("tampered consistency proof verified")
	}
}

func TestConsistencySameSize(t *testing.T) {
	tr := buildTree(9)
	p, err := tr.ProveConsistency(9, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Path) != 0 {
		t.Fatalf("same-size consistency proof should be empty, got %d elements", len(p.Path))
	}
	if err := VerifyConsistency(p, tr.Root(), tr.Root()); err != nil {
		t.Fatal(err)
	}
	other := buildTree(8)
	if err := VerifyConsistency(p, tr.Root(), other.Root()); err == nil {
		t.Fatalf("same-size proof with different roots verified")
	}
}

func TestConsistencyRejectsBadSizes(t *testing.T) {
	tr := buildTree(8)
	if _, err := tr.ProveConsistency(0, 8); err == nil {
		t.Fatalf("m=0 should error")
	}
	if _, err := tr.ProveConsistency(5, 9); err == nil {
		t.Fatalf("n beyond tree should error")
	}
	if _, err := tr.ProveConsistency(6, 5); err == nil {
		t.Fatalf("m>n should error")
	}
}

func TestAppendLeafHashEquivalence(t *testing.T) {
	a := New()
	b := New()
	for i := 0; i < 11; i++ {
		a.Append(leafData(i))
		b.AppendLeafHash(HashLeaf(leafData(i)))
	}
	if a.Root() != b.Root() {
		t.Fatalf("AppendLeafHash should produce the same tree as Append")
	}
}

// Property: for random tree sizes and leaf indices, inclusion proofs verify
// and fail against any other leaf's data.
func TestQuickInclusionRoundTrip(t *testing.T) {
	tr := buildTree(128)
	f := func(rawN uint16, rawI uint16) bool {
		n := int(rawN)%128 + 1
		i := int(rawI) % n
		p, err := tr.ProveInclusion(i, n)
		if err != nil {
			return false
		}
		if VerifyInclusion(p, leafData(i), tr.RootAt(n)) != nil {
			return false
		}
		wrong := (i + 1) % n
		if wrong != i && VerifyInclusion(p, leafData(wrong), tr.RootAt(n)) == nil {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: consistency proofs link any two sizes of the same history and
// reject swapped roots.
func TestQuickConsistencyRoundTrip(t *testing.T) {
	tr := buildTree(128)
	f := func(rawM, rawN uint16) bool {
		m := int(rawM)%128 + 1
		n := int(rawN)%128 + 1
		if m > n {
			m, n = n, m
		}
		p, err := tr.ProveConsistency(m, n)
		if err != nil {
			return false
		}
		if VerifyConsistency(p, tr.RootAt(m), tr.RootAt(n)) != nil {
			return false
		}
		if m != n {
			// Swapping old and new roots must fail.
			if VerifyConsistency(p, tr.RootAt(n), tr.RootAt(m)) == nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestProofPathLengthIsLogarithmic(t *testing.T) {
	tr := buildTree(1 << 10)
	p, err := tr.ProveInclusion(517, 1<<10)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Path) != 10 {
		t.Fatalf("path length for a 1024-leaf tree = %d, want 10", len(p.Path))
	}
}

func BenchmarkAppend(b *testing.B) {
	tr := New()
	data := leafData(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Append(data)
	}
}

func BenchmarkRoot4096(b *testing.B) {
	tr := buildTree(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tr.Root()
	}
}

func BenchmarkProveInclusion4096(b *testing.B) {
	tr := buildTree(4096)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.ProveInclusion(rng.Intn(4096), 4096); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVerifyInclusion4096(b *testing.B) {
	tr := buildTree(4096)
	p, _ := tr.ProveInclusion(1234, 4096)
	root := tr.Root()
	data := leafData(1234)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := VerifyInclusion(p, data, root); err != nil {
			b.Fatal(err)
		}
	}
}

func TestIncrementalRootMatchesRecursive(t *testing.T) {
	// The frontier-folded Root must equal the recursive RootAt at every
	// size — this pins the O(log n) fast path to the reference algorithm.
	tr := New()
	ref := New()
	for i := 0; i < 300; i++ {
		tr.Append(leafData(i))
		ref.Append(leafData(i))
		if tr.Root() != subtreeRootForTest(ref, i+1) {
			t.Fatalf("incremental root diverges at size %d", i+1)
		}
	}
}

// subtreeRootForTest computes the reference (recursive) root.
func subtreeRootForTest(t *Tree, n int) Hash {
	if n == 0 {
		return EmptyRoot()
	}
	return subtreeRoot(t.leaves[:n])
}

func BenchmarkIncrementalAppendAndRoot(b *testing.B) {
	tr := New()
	data := leafData(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Append(data)
		_ = tr.Root()
	}
}
