// Package merkle implements an append-only Merkle log in the style of
// RFC 6962 (Certificate Transparency). It provides the authenticated data
// structure PReVer relies on for the integrity of stored data (Research
// Challenge 4): a log with O(log n) inclusion proofs ("this entry is in the
// ledger") and consistency proofs ("the ledger at size m is a prefix of the
// ledger at size n").
//
// Hashing uses SHA-256 with domain separation between leaves and interior
// nodes so that a leaf can never be confused with a node (second-preimage
// resistance of the tree structure).
package merkle

import (
	"crypto/sha256"
	"errors"
	"fmt"
)

// HashSize is the size in bytes of every hash produced by this package.
const HashSize = sha256.Size

// Hash is a fixed-size tree hash.
type Hash [HashSize]byte

// String renders the first 8 bytes in hex, enough to eyeball digests in logs.
func (h Hash) String() string { return fmt.Sprintf("%x", h[:8]) }

var (
	leafPrefix = []byte{0x00}
	nodePrefix = []byte{0x01}
)

// HashLeaf hashes a leaf entry with the leaf domain prefix.
func HashLeaf(data []byte) Hash {
	s := sha256.New()
	s.Write(leafPrefix)
	s.Write(data)
	var h Hash
	s.Sum(h[:0])
	return h
}

// HashChildren hashes two interior children with the node domain prefix.
func HashChildren(left, right Hash) Hash {
	s := sha256.New()
	s.Write(nodePrefix)
	s.Write(left[:])
	s.Write(right[:])
	var h Hash
	s.Sum(h[:0])
	return h
}

// EmptyRoot is the root hash of an empty tree: SHA-256 of the empty string,
// matching RFC 6962.
func EmptyRoot() Hash {
	return sha256.Sum256(nil)
}

// Tree is an append-only Merkle tree over opaque byte entries. The zero
// value is an empty tree ready for use. Tree is not safe for concurrent use;
// callers (the ledger, the blockchain) serialize access.
//
// Alongside the full leaf list (needed for proofs), the tree maintains a
// frontier of perfect-subtree roots so that the current root costs
// O(log n) instead of O(n) — the property that keeps ledger appends fast.
type Tree struct {
	leaves   []Hash
	frontier []frontierNode // perfect subtrees, strictly decreasing sizes
}

// frontierNode is one perfect subtree on the tree's right frontier.
type frontierNode struct {
	size int // power of two
	hash Hash
}

// New returns an empty tree.
func New() *Tree { return &Tree{} }

// Size returns the number of leaves.
func (t *Tree) Size() int { return len(t.leaves) }

// Append adds an entry and returns its leaf index.
func (t *Tree) Append(data []byte) int {
	return t.AppendLeafHash(HashLeaf(data))
}

// AppendLeafHash adds a pre-hashed leaf. Used when the caller stores entries
// elsewhere and only tracks their hashes.
func (t *Tree) AppendLeafHash(h Hash) int {
	t.leaves = append(t.leaves, h)
	// Merge equal-sized perfect subtrees on the frontier (binary counter).
	t.frontier = append(t.frontier, frontierNode{size: 1, hash: h})
	for len(t.frontier) >= 2 {
		a := t.frontier[len(t.frontier)-2]
		b := t.frontier[len(t.frontier)-1]
		if a.size != b.size {
			break
		}
		t.frontier = t.frontier[:len(t.frontier)-2]
		t.frontier = append(t.frontier, frontierNode{size: a.size * 2, hash: HashChildren(a.hash, b.hash)})
	}
	return len(t.leaves) - 1
}

// LeafHash returns the hash of leaf i.
func (t *Tree) LeafHash(i int) (Hash, error) {
	if i < 0 || i >= len(t.leaves) {
		return Hash{}, fmt.Errorf("merkle: leaf index %d out of range [0,%d)", i, len(t.leaves))
	}
	return t.leaves[i], nil
}

// Root returns the root hash over all current leaves in O(log n), folding
// the frontier right to left (RFC 6962's unbalanced combination).
func (t *Tree) Root() Hash {
	if len(t.frontier) == 0 {
		return EmptyRoot()
	}
	acc := t.frontier[len(t.frontier)-1].hash
	for i := len(t.frontier) - 2; i >= 0; i-- {
		acc = HashChildren(t.frontier[i].hash, acc)
	}
	return acc
}

// RootAt returns the root hash of the first n leaves (the tree as it was
// when it had size n). RootAt(0) is EmptyRoot; RootAt(Size()) is Root().
// Historic roots (n < Size()) cost O(n). Panics if n is out of range.
func (t *Tree) RootAt(n int) Hash {
	if n < 0 || n > len(t.leaves) {
		panic(fmt.Sprintf("merkle: RootAt(%d) out of range [0,%d]", n, len(t.leaves)))
	}
	if n == 0 {
		return EmptyRoot()
	}
	if n == len(t.leaves) {
		return t.Root()
	}
	return subtreeRoot(t.leaves[:n])
}

// subtreeRoot computes the RFC 6962 root of a non-empty span of leaves:
// split at the largest power of two strictly less than len(leaves).
func subtreeRoot(leaves []Hash) Hash {
	if len(leaves) == 1 {
		return leaves[0]
	}
	k := largestPowerOfTwoBelow(len(leaves))
	return HashChildren(subtreeRoot(leaves[:k]), subtreeRoot(leaves[k:]))
}

// largestPowerOfTwoBelow returns the largest power of two strictly less
// than n, for n >= 2.
func largestPowerOfTwoBelow(n int) int {
	k := 1
	for k*2 < n {
		k *= 2
	}
	return k
}

// InclusionProof is an audit path proving a leaf is included under a root.
type InclusionProof struct {
	LeafIndex int    // index of the proven leaf
	TreeSize  int    // size of the tree the proof is against
	Path      []Hash // sibling hashes from leaf to root
}

// ErrProofInvalid is returned by the verification helpers when a proof does
// not check out against the claimed root.
var ErrProofInvalid = errors.New("merkle: proof verification failed")

// ProveInclusion builds an inclusion proof for leaf index i against the tree
// of the first n leaves.
func (t *Tree) ProveInclusion(i, n int) (InclusionProof, error) {
	if n < 1 || n > len(t.leaves) {
		return InclusionProof{}, fmt.Errorf("merkle: tree size %d out of range [1,%d]", n, len(t.leaves))
	}
	if i < 0 || i >= n {
		return InclusionProof{}, fmt.Errorf("merkle: leaf index %d out of range [0,%d)", i, n)
	}
	path := inclusionPath(i, t.leaves[:n])
	return InclusionProof{LeafIndex: i, TreeSize: n, Path: path}, nil
}

func inclusionPath(i int, leaves []Hash) []Hash {
	if len(leaves) == 1 {
		return nil
	}
	k := largestPowerOfTwoBelow(len(leaves))
	if i < k {
		path := inclusionPath(i, leaves[:k])
		return append(path, subtreeRoot(leaves[k:]))
	}
	path := inclusionPath(i-k, leaves[k:])
	return append(path, subtreeRoot(leaves[:k]))
}

// VerifyInclusion checks that leafData is the LeafIndex-th entry of the tree
// of size TreeSize whose root is root.
func VerifyInclusion(proof InclusionProof, leafData []byte, root Hash) error {
	return VerifyInclusionHash(proof, HashLeaf(leafData), root)
}

// VerifyInclusionHash is VerifyInclusion for callers that already hold the
// leaf hash. The proof path was built by recursive descent (siblings
// appended leaf-to-root), so verification replays the same descent to learn
// the left/right decision at each level, then folds the path bottom-up.
func VerifyInclusionHash(proof InclusionProof, leaf Hash, root Hash) error {
	if proof.LeafIndex < 0 || proof.TreeSize < 1 || proof.LeafIndex >= proof.TreeSize {
		return ErrProofInvalid
	}
	type frame struct {
		idx, size int
	}
	var frames []frame
	idx, size := proof.LeafIndex, proof.TreeSize
	for size > 1 {
		frames = append(frames, frame{idx, size})
		k := largestPowerOfTwoBelow(size)
		if idx < k {
			size = k
		} else {
			idx -= k
			size -= k
		}
	}
	if len(frames) != len(proof.Path) {
		return ErrProofInvalid
	}
	h := leaf
	for level := len(frames) - 1; level >= 0; level-- {
		f := frames[level]
		k := largestPowerOfTwoBelow(f.size)
		sib := proof.Path[len(frames)-1-level]
		if f.idx < k {
			h = HashChildren(h, sib)
		} else {
			h = HashChildren(sib, h)
		}
	}
	if h != root {
		return ErrProofInvalid
	}
	return nil
}

// ConsistencyProof proves that the tree of size OldSize is a prefix of the
// tree of size NewSize.
type ConsistencyProof struct {
	OldSize int
	NewSize int
	Path    []Hash
}

// ProveConsistency builds a consistency proof between the tree at size m and
// the tree at size n (m <= n <= Size()).
func (t *Tree) ProveConsistency(m, n int) (ConsistencyProof, error) {
	if m < 1 || n > len(t.leaves) || m > n {
		return ConsistencyProof{}, fmt.Errorf("merkle: consistency sizes (%d,%d) out of range (size %d)", m, n, len(t.leaves))
	}
	path := consistencyPath(m, t.leaves[:n], true)
	return ConsistencyProof{OldSize: m, NewSize: n, Path: path}, nil
}

// consistencyPath implements RFC 6962 SUBPROOF. completeSubtree reports
// whether the old tree is a complete subtree at this recursion level (in
// which case its root is known to the verifier and omitted).
func consistencyPath(m int, leaves []Hash, completeSubtree bool) []Hash {
	n := len(leaves)
	if m == n {
		if completeSubtree {
			return nil
		}
		return []Hash{subtreeRoot(leaves)}
	}
	k := largestPowerOfTwoBelow(n)
	if m <= k {
		path := consistencyPath(m, leaves[:k], completeSubtree)
		return append(path, subtreeRoot(leaves[k:]))
	}
	path := consistencyPath(m-k, leaves[k:], false)
	return append(path, subtreeRoot(leaves[:k]))
}

// VerifyConsistency checks that oldRoot (at OldSize) is consistent with
// newRoot (at NewSize) given the proof.
func VerifyConsistency(proof ConsistencyProof, oldRoot, newRoot Hash) error {
	m, n := proof.OldSize, proof.NewSize
	if m < 1 || m > n {
		return ErrProofInvalid
	}
	if m == n {
		if len(proof.Path) != 0 || oldRoot != newRoot {
			return ErrProofInvalid
		}
		return nil
	}
	// Walk the same recursion as consistencyPath, consuming the path in
	// reverse (it was appended on the way back up).
	type frame struct {
		m, n     int
		complete bool
	}
	var frames []frame
	fm, fn, complete := m, n, true
	for fm != fn {
		frames = append(frames, frame{fm, fn, complete})
		k := largestPowerOfTwoBelow(fn)
		if fm <= k {
			fn = k
		} else {
			fm -= k
			fn -= k
			complete = false
		}
	}
	// At the base: if complete, the verifier seeds with oldRoot; otherwise
	// the first path element is the base subtree root.
	pathLen := len(frames)
	if !complete {
		pathLen++
	}
	if len(proof.Path) != pathLen {
		return ErrProofInvalid
	}
	// Siblings were appended on the recursion's unwind, so Path (after the
	// optional base element) is ordered deepest level first.
	var oldH, newH Hash
	pos := 0
	if complete {
		oldH, newH = oldRoot, oldRoot
	} else {
		oldH, newH = proof.Path[0], proof.Path[0]
		pos = 1
	}
	for level := len(frames) - 1; level >= 0; level-- {
		f := frames[level]
		k := largestPowerOfTwoBelow(f.n)
		sib := proof.Path[pos]
		pos++
		if f.m <= k {
			// Old tree lives entirely in the left child; sibling is the
			// right child's root, present only in the new tree.
			newH = HashChildren(newH, sib)
		} else {
			// Old tree spans the complete left child (root = sib) plus a
			// prefix of the right child.
			oldH = HashChildren(sib, oldH)
			newH = HashChildren(sib, newH)
		}
	}
	if oldH != oldRoot || newH != newRoot {
		return ErrProofInvalid
	}
	return nil
}
