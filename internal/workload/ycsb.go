package workload

import (
	"fmt"
	"math/rand"
)

// OpType enumerates YCSB operation types.
type OpType uint8

// YCSB operation types.
const (
	OpRead OpType = iota + 1
	OpUpdate
	OpInsert
	OpScan
	OpReadModifyWrite
)

// String names the operation.
func (o OpType) String() string {
	switch o {
	case OpRead:
		return "READ"
	case OpUpdate:
		return "UPDATE"
	case OpInsert:
		return "INSERT"
	case OpScan:
		return "SCAN"
	case OpReadModifyWrite:
		return "RMW"
	default:
		return fmt.Sprintf("OpType(%d)", uint8(o))
	}
}

// Op is one generated operation.
type Op struct {
	Type    OpType
	Key     string
	Value   []byte // for writes
	ScanLen int    // for scans
}

// YCSBWorkload identifies a core workload.
type YCSBWorkload string

// The YCSB core workloads.
const (
	YCSBA YCSBWorkload = "A" // 50% read / 50% update, zipfian
	YCSBB YCSBWorkload = "B" // 95% read / 5% update, zipfian
	YCSBC YCSBWorkload = "C" // 100% read, zipfian
	YCSBD YCSBWorkload = "D" // 95% read / 5% insert, latest
	YCSBE YCSBWorkload = "E" // 95% scan / 5% insert, zipfian
	YCSBF YCSBWorkload = "F" // 50% read / 50% read-modify-write, zipfian
)

// AllYCSB lists the six core workloads in order.
var AllYCSB = []YCSBWorkload{YCSBA, YCSBB, YCSBC, YCSBD, YCSBE, YCSBF}

// YCSBConfig sizes a generator.
type YCSBConfig struct {
	Workload    YCSBWorkload
	RecordCount int // preloaded records
	FieldLength int // value size in bytes (default 100)
	MaxScanLen  int // E only (default 100)
	Seed        int64
}

// YCSB generates a YCSB operation stream.
type YCSB struct {
	cfg      YCSBConfig
	rng      *rand.Rand
	zipf     *Zipf
	inserted int // records inserted so far (for D's "latest" and inserts)
}

// NewYCSB builds a generator. Load the store with RecordCount records
// (keys Key(0..RecordCount-1), values of FieldLength bytes) before
// running.
func NewYCSB(cfg YCSBConfig) (*YCSB, error) {
	if cfg.RecordCount < 1 {
		return nil, fmt.Errorf("workload: record count %d", cfg.RecordCount)
	}
	if cfg.FieldLength <= 0 {
		cfg.FieldLength = 100
	}
	if cfg.MaxScanLen <= 0 {
		cfg.MaxScanLen = 100
	}
	switch cfg.Workload {
	case YCSBA, YCSBB, YCSBC, YCSBD, YCSBE, YCSBF:
	default:
		return nil, fmt.Errorf("workload: unknown YCSB workload %q", cfg.Workload)
	}
	z, err := NewZipf(uint64(cfg.RecordCount), 0.99, cfg.Seed)
	if err != nil {
		return nil, err
	}
	return &YCSB{
		cfg:      cfg,
		rng:      rand.New(rand.NewSource(cfg.Seed + 1)),
		zipf:     z,
		inserted: cfg.RecordCount,
	}, nil
}

// Key renders record i's key.
func Key(i int) string { return fmt.Sprintf("user%010d", i) }

// value produces a deterministic pseudo-random value.
func (y *YCSB) value() []byte {
	v := make([]byte, y.cfg.FieldLength)
	y.rng.Read(v)
	return v
}

// existingKey picks a key according to the workload's distribution.
func (y *YCSB) existingKey() string {
	if y.cfg.Workload == YCSBD {
		// "Latest": zipfian over recency.
		off := int(y.zipf.Next())
		i := y.inserted - 1 - off
		if i < 0 {
			i = 0
		}
		return Key(i)
	}
	i := int(y.zipf.Next())
	if i >= y.inserted {
		i = y.inserted - 1
	}
	return Key(i)
}

// Next generates the next operation.
func (y *YCSB) Next() Op {
	p := y.rng.Float64()
	switch y.cfg.Workload {
	case YCSBA:
		if p < 0.5 {
			return Op{Type: OpRead, Key: y.existingKey()}
		}
		return Op{Type: OpUpdate, Key: y.existingKey(), Value: y.value()}
	case YCSBB:
		if p < 0.95 {
			return Op{Type: OpRead, Key: y.existingKey()}
		}
		return Op{Type: OpUpdate, Key: y.existingKey(), Value: y.value()}
	case YCSBC:
		return Op{Type: OpRead, Key: y.existingKey()}
	case YCSBD:
		if p < 0.95 {
			return Op{Type: OpRead, Key: y.existingKey()}
		}
		key := Key(y.inserted)
		y.inserted++
		return Op{Type: OpInsert, Key: key, Value: y.value()}
	case YCSBE:
		if p < 0.95 {
			return Op{Type: OpScan, Key: y.existingKey(), ScanLen: 1 + y.rng.Intn(y.cfg.MaxScanLen)}
		}
		key := Key(y.inserted)
		y.inserted++
		return Op{Type: OpInsert, Key: key, Value: y.value()}
	default: // YCSBF
		if p < 0.5 {
			return Op{Type: OpRead, Key: y.existingKey()}
		}
		return Op{Type: OpReadModifyWrite, Key: y.existingKey(), Value: y.value()}
	}
}

// Generate produces n operations.
func (y *YCSB) Generate(n int) []Op {
	ops := make([]Op, n)
	for i := range ops {
		ops[i] = y.Next()
	}
	return ops
}
