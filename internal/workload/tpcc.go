package workload

import (
	"fmt"
	"math/rand"
)

// TxType enumerates TPC-C-lite transaction types.
type TxType uint8

// TPC-C-lite transaction types (the New-Order / Payment subset, which
// dominates the official mix and exercises the update path PReVer cares
// about).
const (
	TxNewOrder TxType = iota + 1
	TxPayment
	TxOrderStatus
)

// String names the transaction type.
func (t TxType) String() string {
	switch t {
	case TxNewOrder:
		return "NEW_ORDER"
	case TxPayment:
		return "PAYMENT"
	case TxOrderStatus:
		return "ORDER_STATUS"
	default:
		return fmt.Sprintf("TxType(%d)", uint8(t))
	}
}

// OrderLine is one item of a new order.
type OrderLine struct {
	Item     int
	Quantity int
}

// TPCCTx is one generated transaction.
type TPCCTx struct {
	Type      TxType
	Warehouse int
	District  int
	Customer  int
	Amount    int64       // Payment: cents
	Lines     []OrderLine // NewOrder
}

// TPCCConfig sizes the generator.
type TPCCConfig struct {
	Warehouses int // default 1
	Districts  int // per warehouse, default 10
	Customers  int // per district, default 3000
	Items      int // default 1000
	Seed       int64
}

// TPCC generates a TPC-C-lite transaction stream with the standard-ish
// mix: 45% New-Order, 43% Payment, 12% Order-Status.
type TPCC struct {
	cfg TPCCConfig
	rng *rand.Rand
}

// NewTPCC builds a generator.
func NewTPCC(cfg TPCCConfig) (*TPCC, error) {
	if cfg.Warehouses <= 0 {
		cfg.Warehouses = 1
	}
	if cfg.Districts <= 0 {
		cfg.Districts = 10
	}
	if cfg.Customers <= 0 {
		cfg.Customers = 3000
	}
	if cfg.Items <= 0 {
		cfg.Items = 1000
	}
	return &TPCC{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}, nil
}

// Next generates one transaction.
func (t *TPCC) Next() TPCCTx {
	tx := TPCCTx{
		Warehouse: t.rng.Intn(t.cfg.Warehouses),
		District:  t.rng.Intn(t.cfg.Districts),
		Customer:  t.rng.Intn(t.cfg.Customers),
	}
	p := t.rng.Float64()
	switch {
	case p < 0.45:
		tx.Type = TxNewOrder
		n := 5 + t.rng.Intn(11) // 5..15 lines, per spec
		tx.Lines = make([]OrderLine, n)
		for i := range tx.Lines {
			tx.Lines[i] = OrderLine{Item: t.rng.Intn(t.cfg.Items), Quantity: 1 + t.rng.Intn(10)}
		}
	case p < 0.88:
		tx.Type = TxPayment
		tx.Amount = int64(100 + t.rng.Intn(500000)) // $1.00 .. $5000.00
	default:
		tx.Type = TxOrderStatus
	}
	return tx
}

// Generate produces n transactions.
func (t *TPCC) Generate(n int) []TPCCTx {
	txs := make([]TPCCTx, n)
	for i := range txs {
		txs[i] = t.Next()
	}
	return txs
}
