package workload

import (
	"testing"
	"time"
)

func TestZipfValidation(t *testing.T) {
	if _, err := NewZipf(0, 0.99, 1); err == nil {
		t.Fatal("empty domain accepted")
	}
	if _, err := NewZipf(10, 0, 1); err == nil {
		t.Fatal("theta=0 accepted")
	}
	if _, err := NewZipf(10, 1, 1); err == nil {
		t.Fatal("theta=1 accepted")
	}
}

func TestZipfInRangeAndSkewed(t *testing.T) {
	z, err := NewZipf(1000, 0.99, 42)
	if err != nil {
		t.Fatal(err)
	}
	const n = 20000
	counts := make(map[uint64]int)
	for i := 0; i < n; i++ {
		v := z.Next()
		if v >= 1000 {
			t.Fatalf("zipf sample %d out of range", v)
		}
		counts[v]++
	}
	// Key 0 must be by far the hottest; with theta=.99 it draws ~10%+.
	if counts[0] < n/20 {
		t.Fatalf("hottest key drew only %d/%d samples", counts[0], n)
	}
	// The distribution must not be degenerate.
	if len(counts) < 50 {
		t.Fatalf("only %d distinct keys sampled", len(counts))
	}
}

func TestZipfDeterministic(t *testing.T) {
	a, _ := NewZipf(100, 0.99, 7)
	b, _ := NewZipf(100, 0.99, 7)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestUniform(t *testing.T) {
	if _, err := NewUniform(0, 1); err == nil {
		t.Fatal("empty domain accepted")
	}
	u, _ := NewUniform(10, 3)
	seen := make(map[uint64]bool)
	for i := 0; i < 1000; i++ {
		v := u.Next()
		if v >= 10 {
			t.Fatalf("uniform sample %d out of range", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("uniform covered only %d/10 values", len(seen))
	}
}

func TestYCSBValidation(t *testing.T) {
	if _, err := NewYCSB(YCSBConfig{Workload: YCSBA, RecordCount: 0}); err == nil {
		t.Fatal("zero records accepted")
	}
	if _, err := NewYCSB(YCSBConfig{Workload: "Z", RecordCount: 10}); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestYCSBMixes(t *testing.T) {
	const n = 10000
	cases := []struct {
		w        YCSBWorkload
		expected map[OpType]float64 // fraction, +-0.03
	}{
		{YCSBA, map[OpType]float64{OpRead: 0.5, OpUpdate: 0.5}},
		{YCSBB, map[OpType]float64{OpRead: 0.95, OpUpdate: 0.05}},
		{YCSBC, map[OpType]float64{OpRead: 1.0}},
		{YCSBD, map[OpType]float64{OpRead: 0.95, OpInsert: 0.05}},
		{YCSBE, map[OpType]float64{OpScan: 0.95, OpInsert: 0.05}},
		{YCSBF, map[OpType]float64{OpRead: 0.5, OpReadModifyWrite: 0.5}},
	}
	for _, c := range cases {
		g, err := NewYCSB(YCSBConfig{Workload: c.w, RecordCount: 1000, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		counts := make(map[OpType]int)
		for _, op := range g.Generate(n) {
			counts[op.Type]++
			if op.Key == "" {
				t.Fatalf("workload %s produced empty key", c.w)
			}
			if (op.Type == OpUpdate || op.Type == OpInsert || op.Type == OpReadModifyWrite) && len(op.Value) == 0 {
				t.Fatalf("workload %s write without value", c.w)
			}
			if op.Type == OpScan && op.ScanLen < 1 {
				t.Fatalf("workload %s scan without length", c.w)
			}
		}
		for ot, frac := range c.expected {
			got := float64(counts[ot]) / n
			if got < frac-0.03 || got > frac+0.03 {
				t.Errorf("workload %s: %s fraction = %.3f, want ~%.2f", c.w, ot, got, frac)
			}
		}
	}
}

func TestYCSBInsertsAreFreshKeys(t *testing.T) {
	g, _ := NewYCSB(YCSBConfig{Workload: YCSBD, RecordCount: 100, Seed: 2})
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		seen[Key(i)] = true
	}
	for _, op := range g.Generate(5000) {
		if op.Type == OpInsert {
			if seen[op.Key] {
				t.Fatalf("insert reused key %s", op.Key)
			}
			seen[op.Key] = true
		}
	}
}

func TestYCSBDeterministic(t *testing.T) {
	a, _ := NewYCSB(YCSBConfig{Workload: YCSBA, RecordCount: 100, Seed: 9})
	b, _ := NewYCSB(YCSBConfig{Workload: YCSBA, RecordCount: 100, Seed: 9})
	opsA := a.Generate(200)
	opsB := b.Generate(200)
	for i := range opsA {
		if opsA[i].Type != opsB[i].Type || opsA[i].Key != opsB[i].Key {
			t.Fatal("same seed produced different op streams")
		}
	}
}

func TestTPCCMix(t *testing.T) {
	g, err := NewTPCC(TPCCConfig{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	const n = 10000
	counts := make(map[TxType]int)
	for _, tx := range g.Generate(n) {
		counts[tx.Type]++
		switch tx.Type {
		case TxNewOrder:
			if len(tx.Lines) < 5 || len(tx.Lines) > 15 {
				t.Fatalf("new order with %d lines", len(tx.Lines))
			}
		case TxPayment:
			if tx.Amount < 100 {
				t.Fatalf("payment of %d cents", tx.Amount)
			}
		}
	}
	if f := float64(counts[TxNewOrder]) / n; f < 0.42 || f > 0.48 {
		t.Errorf("new-order fraction %.3f", f)
	}
	if f := float64(counts[TxPayment]) / n; f < 0.40 || f > 0.46 {
		t.Errorf("payment fraction %.3f", f)
	}
}

func TestCrowdworkTrace(t *testing.T) {
	g, err := NewCrowdwork(CrowdworkConfig{Workers: 10, Platforms: 2, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	events := g.Generate(500)
	if len(events) != 500 {
		t.Fatalf("generated %d events", len(events))
	}
	workers := map[string]bool{}
	platforms := map[string]bool{}
	for i, e := range events {
		if e.Hours < 1 || e.Hours > 8 {
			t.Fatalf("event hours = %d", e.Hours)
		}
		workers[e.Worker] = true
		platforms[e.Platform] = true
		if i > 0 && e.TS.Before(events[i-1].TS) {
			t.Fatal("events not time-ordered")
		}
	}
	if len(workers) != 10 || len(platforms) != 2 {
		t.Fatalf("coverage: %d workers, %d platforms", len(workers), len(platforms))
	}
}

func TestCrowdworkHotWorkersSkew(t *testing.T) {
	g, err := NewCrowdwork(CrowdworkConfig{Workers: 100, HotWorkers: true, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, e := range g.Generate(2000) {
		counts[e.Worker]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	// Zipfian: the hottest worker should dominate (>> 2000/100 = 20).
	if max < 100 {
		t.Fatalf("hottest worker has only %d/2000 tasks; not skewed", max)
	}
}

func TestCrowdworkIDsUnique(t *testing.T) {
	g, _ := NewCrowdwork(CrowdworkConfig{Seed: 1})
	seen := map[string]bool{}
	for _, e := range g.Generate(100) {
		if seen[e.ID] {
			t.Fatalf("duplicate task id %s", e.ID)
		}
		seen[e.ID] = true
	}
}

func TestCrowdworkWindowFitsSpan(t *testing.T) {
	start := time.Date(2022, 3, 28, 0, 0, 0, 0, time.UTC)
	g, _ := NewCrowdwork(CrowdworkConfig{Start: start, Span: 24 * time.Hour, Seed: 2})
	for _, e := range g.Generate(100) {
		if e.TS.Before(start) || e.TS.After(start.Add(24*time.Hour)) {
			t.Fatalf("event at %v outside span", e.TS)
		}
	}
}

func BenchmarkZipfNext(b *testing.B) {
	z, _ := NewZipf(1<<20, 0.99, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		z.Next()
	}
}

func BenchmarkYCSBNext(b *testing.B) {
	g, _ := NewYCSB(YCSBConfig{Workload: YCSBA, RecordCount: 10000, Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Next()
	}
}
