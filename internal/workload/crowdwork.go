package workload

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// TaskEvent is one completed crowdworking task: the update unit of the
// Separ instantiation (Section 5 of the paper). It is the synthetic
// substitute for production ride-sharing traces: what matters for the FLSA
// regulation is only the (worker, platform, hours, timestamp) shape.
type TaskEvent struct {
	ID       string
	Worker   string
	Platform string
	Hours    int64 // whole hours; the regulated unit
	TS       time.Time
}

// CrowdworkConfig sizes the trace.
type CrowdworkConfig struct {
	Workers    int // default 100
	Platforms  int // default 3
	Start      time.Time
	Span       time.Duration // default 1 week
	MaxTaskHrs int           // default 8
	// HotWorkers skews task assignment zipfian-style: a few workers do
	// most tasks, which is what pushes some of them against the 40h cap.
	HotWorkers bool
	Seed       int64
}

// Crowdwork generates a multi-platform task-completion trace.
type Crowdwork struct {
	cfg  CrowdworkConfig
	rng  *rand.Rand
	zipf *Zipf
	n    int
}

// NewCrowdwork builds a trace generator.
func NewCrowdwork(cfg CrowdworkConfig) (*Crowdwork, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 100
	}
	if cfg.Platforms <= 0 {
		cfg.Platforms = 3
	}
	if cfg.Span <= 0 {
		cfg.Span = 7 * 24 * time.Hour
	}
	if cfg.MaxTaskHrs <= 0 {
		cfg.MaxTaskHrs = 8
	}
	if cfg.Start.IsZero() {
		cfg.Start = time.Date(2022, 3, 28, 0, 0, 0, 0, time.UTC)
	}
	c := &Crowdwork{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	if cfg.HotWorkers {
		z, err := NewZipf(uint64(cfg.Workers), 0.99, cfg.Seed+1)
		if err != nil {
			return nil, err
		}
		c.zipf = z
	}
	return c, nil
}

// WorkerID renders worker i's id.
func WorkerID(i int) string { return fmt.Sprintf("worker-%04d", i) }

// PlatformID renders platform i's id.
func PlatformID(i int) string { return fmt.Sprintf("platform-%d", i) }

// Next generates one task completion. Timestamps advance randomly within
// the span (events are generated in time order).
func (c *Crowdwork) Next() TaskEvent {
	c.n++
	var worker int
	if c.zipf != nil {
		worker = int(c.zipf.Next())
	} else {
		worker = c.rng.Intn(c.cfg.Workers)
	}
	offset := time.Duration(c.rng.Int63n(int64(c.cfg.Span)))
	return TaskEvent{
		ID:       fmt.Sprintf("task-%06d", c.n),
		Worker:   WorkerID(worker),
		Platform: PlatformID(c.rng.Intn(c.cfg.Platforms)),
		Hours:    1 + c.rng.Int63n(int64(c.cfg.MaxTaskHrs)),
		TS:       c.cfg.Start.Add(offset),
	}
}

// Generate produces n task events sorted by timestamp.
func (c *Crowdwork) Generate(n int) []TaskEvent {
	events := make([]TaskEvent, n)
	for i := range events {
		events[i] = c.Next()
	}
	// Sort by timestamp so replay order is realistic.
	sort.Slice(events, func(i, j int) bool { return events[i].TS.Before(events[j].TS) })
	return events
}
