// Package workload generates the benchmark workloads the paper prescribes
// for evaluating PReVer instantiations: "comparisons should be performed
// with respect to non-private solutions using standardized database
// benchmarks like TPC and YCSB". It provides the YCSB core workloads A–F
// with zipfian/uniform/latest request distributions, a TPC-C-like
// transaction mix (New-Order / Payment), and a synthetic multi-platform
// crowdworking trace for the Separ instantiation (the substitution for
// production ride-sharing traces documented in DESIGN.md).
//
// All generators are deterministic given a seed.
package workload

import (
	"fmt"
	"math"
	"math/rand"
)

// Zipf generates zipf-distributed integers in [0, n) with the classic
// YCSB constant theta = 0.99 by default, using the Gray et al. algorithm
// (the same one YCSB uses), which permits O(1) sampling after O(n) setup.
type Zipf struct {
	rng      *rand.Rand
	n        uint64
	theta    float64
	zetaN    float64
	zeta2    float64
	alpha    float64
	eta      float64
	halfPowT float64
}

// NewZipf creates a zipfian generator over [0, n).
func NewZipf(n uint64, theta float64, seed int64) (*Zipf, error) {
	if n == 0 {
		return nil, fmt.Errorf("workload: zipf over empty domain")
	}
	if theta <= 0 || theta >= 1 {
		return nil, fmt.Errorf("workload: zipf theta must be in (0,1), got %v", theta)
	}
	z := &Zipf{
		rng:   rand.New(rand.NewSource(seed)),
		n:     n,
		theta: theta,
	}
	z.zetaN = zeta(n, theta)
	z.zeta2 = zeta(2, theta)
	z.alpha = 1.0 / (1.0 - theta)
	z.eta = (1 - math.Pow(2.0/float64(n), 1-theta)) / (1 - z.zeta2/z.zetaN)
	z.halfPowT = 1.0 + math.Pow(0.5, theta)
	return z, nil
}

func zeta(n uint64, theta float64) float64 {
	sum := 0.0
	for i := uint64(1); i <= n; i++ {
		sum += 1.0 / math.Pow(float64(i), theta)
	}
	return sum
}

// Next samples the next zipf value; 0 is the hottest key.
func (z *Zipf) Next() uint64 {
	u := z.rng.Float64()
	uz := u * z.zetaN
	if uz < 1.0 {
		return 0
	}
	if uz < z.halfPowT {
		return 1
	}
	return uint64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
}

// Uniform generates uniform integers in [0, n).
type Uniform struct {
	rng *rand.Rand
	n   uint64
}

// NewUniform creates a uniform generator over [0, n).
func NewUniform(n uint64, seed int64) (*Uniform, error) {
	if n == 0 {
		return nil, fmt.Errorf("workload: uniform over empty domain")
	}
	return &Uniform{rng: rand.New(rand.NewSource(seed)), n: n}, nil
}

// Next samples the next value.
func (u *Uniform) Next() uint64 {
	return uint64(u.rng.Int63n(int64(u.n)))
}
