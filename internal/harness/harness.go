// Package harness boots real prever-server PROCESSES on loopback TCP
// and drives them through the wire API — the multi-process companion to
// the in-process fault harness (internal/chaos). Where the rest of the
// test suite exercises the chain through function calls, this harness
// proves the deployable artifact: `go build` the server binary, exec N
// copies on ephemeral ports, wait for /health, submit over HTTP, and
// audit convergence per process.
package harness

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"time"

	"prever/internal/api"
)

// BuildServer compiles cmd/prever-server into dir and returns the
// binary path. The module root is discovered from `go env GOMOD`, so it
// works from any package's test directory.
func BuildServer(dir string) (string, error) {
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		return "", fmt.Errorf("harness: go env GOMOD: %w", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == os.DevNull {
		return "", fmt.Errorf("harness: not inside a module (GOMOD=%q)", gomod)
	}
	bin := filepath.Join(dir, "prever-server")
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/prever-server")
	cmd.Dir = filepath.Dir(gomod)
	if out, err := cmd.CombinedOutput(); err != nil {
		return "", fmt.Errorf("harness: build prever-server: %v\n%s", err, out)
	}
	return bin, nil
}

// Proc is one running server process.
type Proc struct {
	// Addr is the base URL the process listens on ("http://127.0.0.1:PORT").
	Addr string

	cmd      *exec.Cmd
	stopOnce sync.Once
	stopErr  error
	waitCh   chan error
}

// startTimeout bounds how long a process may take to print its
// listening line. A variable so tests can exercise the deadline path
// without waiting out the production value.
var startTimeout = 30 * time.Second

// Start execs the server binary with -addr 127.0.0.1:0 plus extraArgs
// and blocks until the process prints its "listening on" contract line,
// from which the ephemeral port is learned. Stderr passes through to
// the test's stderr for debuggability.
func Start(bin string, extraArgs ...string) (*Proc, error) {
	args := append([]string{"-addr", "127.0.0.1:0"}, extraArgs...)
	cmd := exec.Command(bin, args...)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	p := &Proc{cmd: cmd, waitCh: make(chan error, 1)}
	go func() { p.waitCh <- cmd.Wait() }()

	addrCh := make(chan string, 1)
	errCh := make(chan error, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			if _, after, ok := strings.Cut(line, "listening on "); ok {
				addrCh <- strings.TrimSpace(after)
				// Keep draining so the child never blocks on a full pipe.
				_, _ = io.Copy(io.Discard, stdout)
				return
			}
		}
		errCh <- fmt.Errorf("harness: server exited before printing its address (scan err: %v)", sc.Err())
	}()

	startTmr := time.NewTimer(startTimeout)
	defer startTmr.Stop()
	select {
	case addr := <-addrCh:
		p.Addr = addr
		return p, nil
	case err := <-errCh:
		_ = p.Stop()
		return nil, err
	case <-startTmr.C:
		_ = p.Stop()
		return nil, fmt.Errorf("harness: server did not print its address within %s", startTimeout)
	}
}

// Client returns a wire client for this process.
func (p *Proc) Client() *api.Client { return api.NewClient(p.Addr) }

// Stop shuts the process down: SIGTERM first (the server's graceful
// path), SIGKILL if it lingers. Safe to call more than once.
func (p *Proc) Stop() error {
	p.stopOnce.Do(func() {
		_ = p.cmd.Process.Signal(syscall.SIGTERM)
		killTmr := time.NewTimer(10 * time.Second)
		defer killTmr.Stop()
		select {
		case err := <-p.waitCh:
			p.stopErr = err
		case <-killTmr.C:
			_ = p.cmd.Process.Kill()
			p.stopErr = fmt.Errorf("harness: server ignored SIGTERM, killed")
			<-p.waitCh
		}
	})
	return p.stopErr
}

// Kill sends SIGKILL immediately — no graceful shutdown, no WAL close,
// the crash a power cut or OOM kill delivers. Safe to call more than
// once; after Kill the process's data directory is exactly what fsync
// made durable.
func (p *Proc) Kill() error {
	p.stopOnce.Do(func() {
		_ = p.cmd.Process.Kill()
		p.stopErr = <-p.waitCh
	})
	return p.stopErr
}

// WaitHealthy polls GET /health until the process answers ok.
func (p *Proc) WaitHealthy(timeout time.Duration) error {
	client := p.Client()
	deadline := time.Now().Add(timeout)
	var lastErr error
	for time.Now().Before(deadline) {
		h, err := client.Health()
		if err == nil && h.Status == "ok" {
			return nil
		}
		lastErr = err
		time.Sleep(10 * time.Millisecond)
	}
	return fmt.Errorf("harness: %s never became healthy: %v", p.Addr, lastErr)
}

// WaitConverged polls GET /audit until every peer of every shard in the
// process holds the same verified chain.
func (p *Proc) WaitConverged(timeout time.Duration) (api.AuditResponse, error) {
	client := p.Client()
	deadline := time.Now().Add(timeout)
	var last api.AuditResponse
	for time.Now().Before(deadline) {
		audit, err := client.Audit()
		if err != nil {
			return audit, err
		}
		last = audit
		if audit.Clean && audit.Converged {
			return audit, nil
		}
		time.Sleep(5 * time.Millisecond)
	}
	return last, fmt.Errorf("harness: %s did not converge: %+v", p.Addr, last)
}

// Cluster is a set of independent server processes (each owns its own
// chain — process isolation, not replication across processes).
type Cluster struct {
	Procs []*Proc
}

// StartCluster boots n processes of the same binary, waiting for each
// to become healthy. On any failure the already-started processes are
// stopped.
func StartCluster(bin string, n int, extraArgs ...string) (*Cluster, error) {
	c := &Cluster{}
	for i := 0; i < n; i++ {
		p, err := Start(bin, extraArgs...)
		if err != nil {
			c.Stop()
			return nil, fmt.Errorf("harness: starting process %d: %w", i, err)
		}
		c.Procs = append(c.Procs, p)
		if err := p.WaitHealthy(startTimeout); err != nil {
			c.Stop()
			return nil, err
		}
	}
	return c, nil
}

// Stop shuts every process down, returning the first error.
func (c *Cluster) Stop() error {
	var firstErr error
	for _, p := range c.Procs {
		if err := p.Stop(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
