package harness

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"prever/internal/api"
	"prever/internal/chain"
	"prever/internal/leaktest"
)

// TestMultiProcessCluster is the deployable-artifact test: build the
// real server binary, boot three OS processes on loopback TCP, drive
// each through the wire client, and assert every process's chain
// converges clean. It proves the pieces the in-process suite cannot:
// flag parsing, the stdout address contract, JSON over a real socket,
// and graceful SIGTERM shutdown.
func TestMultiProcessCluster(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process harness is not -short")
	}
	// The processes are external, but each Proc owns in-process goroutines
	// (stdout scanner, cmd.Wait); Stop must reap them all.
	t.Cleanup(leaktest.Check(t))
	bin, err := BuildServer(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const n = 3
	cluster, err := StartCluster(bin, n, "-flush", "1ms")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = cluster.Stop() })
	if len(cluster.Procs) != n {
		t.Fatalf("started %d processes, want %d", len(cluster.Procs), n)
	}

	// Each process is an independent chain; drive all three and check
	// they answer independently.
	const perProc = 10
	for pi, proc := range cluster.Procs {
		client := proc.Client()
		// Singles.
		for i := 0; i < perProc/2; i++ {
			id, err := client.Submit(api.Tx{
				Kind:  api.KindPut,
				Key:   fmt.Sprintf("proc%d/key%d", pi, i),
				Value: []byte(fmt.Sprintf("v%d", i)),
			})
			if err != nil {
				t.Fatalf("proc %d submit %d: %v", pi, i, err)
			}
			if id == "" {
				t.Fatalf("proc %d submit %d: empty tx id", pi, i)
			}
		}
		// One batch for the rest.
		txs := make([]api.Tx, perProc/2)
		for i := range txs {
			txs[i] = api.Tx{
				Kind:  api.KindPut,
				Key:   fmt.Sprintf("proc%d/batch%d", pi, i),
				Value: []byte("b"),
			}
		}
		results, err := client.SubmitBatch(txs)
		if err != nil {
			t.Fatalf("proc %d batch: %v", pi, err)
		}
		for i, r := range results {
			if r.Code != "" {
				t.Fatalf("proc %d batch tx %d: %s %s", pi, i, r.Code, r.Error)
			}
		}
	}

	// The typed sentinels survive the process boundary: resubmitting a
	// committed ID yields chain.ErrDuplicate out of the remote client.
	c0 := cluster.Procs[0].Client()
	dup := api.Tx{ID: "harness-dup", Kind: api.KindPut, Key: "dup", Value: []byte("v")}
	if _, err := c0.Submit(dup); err != nil {
		t.Fatal(err)
	}
	if _, err := c0.Submit(dup); !errors.Is(err, chain.ErrDuplicate) {
		t.Fatalf("remote duplicate err = %v, want chain.ErrDuplicate", err)
	}

	// Every process's peers converge on identical verified chains, and
	// the processes stayed isolated: each one's stats count only its own
	// submissions.
	for pi, proc := range cluster.Procs {
		audit, err := proc.WaitConverged(10 * time.Second)
		if err != nil {
			t.Fatalf("proc %d: %v", pi, err)
		}
		for _, sh := range audit.Shards {
			if len(sh.Heights) != 4 {
				t.Fatalf("proc %d shard %s has %d peers, want 4 (f=1)", pi, sh.Name, len(sh.Heights))
			}
		}
		st, err := proc.Client().Stats()
		if err != nil {
			t.Fatalf("proc %d stats: %v", pi, err)
		}
		want := int64(perProc)
		if pi == 0 {
			want += 2 // the duplicate probe pair
		}
		if st.Total.Submitted != want {
			t.Fatalf("proc %d submitted = %d, want %d (processes must be isolated)", pi, st.Total.Submitted, want)
		}
		if st.Total.Accepted != want-st.Total.Duplicates {
			t.Fatalf("proc %d accepted = %d, duplicates = %d, submitted = %d",
				pi, st.Total.Accepted, st.Total.Duplicates, st.Total.Submitted)
		}
	}

	// Graceful shutdown: SIGTERM is the server's clean exit path.
	if err := cluster.Stop(); err != nil {
		t.Fatalf("graceful stop: %v", err)
	}
}

// TestKillRecoverFromDisk is the durability proof at process
// granularity: boot a server with -data, submit acked transactions,
// SIGKILL it mid-load (no shutdown hook runs — only fsync survives),
// restart from the same directory, and read every acked key back. This
// is the crash a power cut delivers; anything the server acked before
// the kill must still be there.
func TestKillRecoverFromDisk(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process harness is not -short")
	}
	t.Cleanup(leaktest.Check(t))
	bin, err := BuildServer(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	dataDir := t.TempDir()
	args := []string{"-data", dataDir, "-flush", "1ms", "-snap-every", "8"}
	proc, err := Start(bin, args...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = proc.Kill() })
	if err := proc.WaitHealthy(startTimeout); err != nil {
		t.Fatal(err)
	}
	client := proc.Client()

	// Submit until the concurrent SIGKILL lands: every successful Submit
	// is an ack, and the kill races the tail of the load.
	const killAfter = 25
	killed := make(chan struct{})
	acked := make(map[string]string)
	for i := 0; ; i++ {
		key := fmt.Sprintf("durable/key%d", i)
		val := fmt.Sprintf("v%d", i)
		_, err := client.Submit(api.Tx{Kind: api.KindPut, Key: key, Value: []byte(val)})
		if err != nil {
			break // the kill landed mid-load
		}
		acked[key] = val
		if i == killAfter {
			go func() { defer close(killed); _ = proc.Kill() }()
		}
		if i > killAfter+100000 {
			t.Fatal("SIGKILL never took the server down")
		}
	}
	<-killed
	if len(acked) <= killAfter {
		t.Fatalf("only %d acks before the kill landed, want > %d", len(acked), killAfter)
	}

	// Restart from the same directory. The replicas replay their WALs;
	// fresh traffic kicks consensus past any batch that was committed
	// but not yet executed everywhere at kill time.
	proc2, err := Start(bin, args...)
	if err != nil {
		t.Fatalf("restart from %s: %v", dataDir, err)
	}
	t.Cleanup(func() { _ = proc2.Stop() })
	if err := proc2.WaitHealthy(startTimeout); err != nil {
		t.Fatal(err)
	}
	c2 := proc2.Client()
	if _, err := c2.Submit(api.Tx{Kind: api.KindPut, Key: "durable/post-restart", Value: []byte("p")}); err != nil {
		t.Fatalf("post-restart submit: %v", err)
	}
	audit, err := proc2.WaitConverged(30 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !audit.Clean || !audit.Converged {
		t.Fatalf("post-restart audit not clean/converged: %+v", audit)
	}

	// No acked transaction is lost.
	for key, want := range acked {
		got, found, err := c2.Get(key)
		if err != nil {
			t.Fatalf("get %s after recovery: %v", key, err)
		}
		if !found {
			t.Fatalf("acked key %s lost across SIGKILL (had %d acked keys)", key, len(acked))
		}
		if string(got) != want {
			t.Fatalf("acked key %s = %q after recovery, want %q", key, got, want)
		}
	}
}

// TestRemoteConfUpdate reconfigures a running server process over the
// wire and checks the change is live without restart.
func TestRemoteConfUpdate(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process harness is not -short")
	}
	t.Cleanup(leaktest.Check(t))
	bin, err := BuildServer(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	proc, err := Start(bin)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = proc.Stop() })
	if err := proc.WaitHealthy(startTimeout); err != nil {
		t.Fatal(err)
	}
	client := proc.Client()
	view, err := client.SetConf(api.ConfUpdate{BatchSize: intp(1), FlushInterval: strp("1ms")})
	if err != nil {
		t.Fatal(err)
	}
	if view.BatchSize != 1 {
		t.Fatalf("batchSize = %d after update, want 1", view.BatchSize)
	}
	txs := make([]api.Tx, 6)
	for i := range txs {
		txs[i] = api.Tx{Kind: api.KindPut, Key: fmt.Sprintf("k%d", i), Value: []byte("v")}
	}
	if _, err := client.SubmitBatch(txs); err != nil {
		t.Fatal(err)
	}
	st, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Total.Batches.MaxSize != 1 {
		t.Fatalf("max proposed batch = %d with batchSize=1 set over the wire, want 1", st.Total.Batches.MaxSize)
	}
}

func intp(n int) *int       { return &n }
func strp(s string) *string { return &s }

// TestStartTimesOutOnSilentServer: a process that never prints its
// "listening on" line must trip Start's deadline (a stoppable timer
// since the timerleak fix) and be reaped, not hang the harness.
func TestStartTimesOutOnSilentServer(t *testing.T) {
	t.Cleanup(leaktest.Check(t))
	script := filepath.Join(t.TempDir(), "silent.sh")
	// exec so the sleep replaces the shell: Stop's SIGTERM must reach the
	// process holding the stdout pipe, or reaping blocks on pipe EOF.
	if err := os.WriteFile(script, []byte("#!/bin/sh\nexec sleep 60\n"), 0o755); err != nil {
		t.Fatal(err)
	}
	old := startTimeout
	startTimeout = 300 * time.Millisecond
	defer func() { startTimeout = old }()
	if _, err := Start(script); err == nil || !strings.Contains(err.Error(), "did not print its address") {
		t.Fatalf("Start(silent server) = %v, want start-timeout error", err)
	}
}
