package chain

import (
	"fmt"
	"testing"
	"time"

	"prever/internal/netsim"
)

func durableShardCfg(dir string) ShardConfig {
	return ShardConfig{
		Name:          "s0",
		F:             1,
		Collections:   map[string][]string{"collA": {"s0/peer0", "s0/peer1", "s0/peer2"}},
		Timeout:       5 * time.Second,
		DataDir:       dir,
		SnapshotEvery: 8,
	}
}

// TestShardDurableRestart: a shard closed and rebuilt on a fresh network
// from the same data directory serves every committed key from disk
// alone — world state, chain integrity, and the private-data hash all
// survive (private VALUES live off-chain and are expected lost).
func TestShardDurableRestart(t *testing.T) {
	dir := t.TempDir()
	net1 := netsim.New(netsim.Config{})
	s, err := NewShard(net1, durableShardCfg(dir))
	if err != nil {
		t.Fatal(err)
	}
	const n = 20
	chans := make([]<-chan Result, 0, n)
	for i := 0; i < n; i++ {
		chans = append(chans, s.SubmitAsync(Tx{
			Kind:  TxPut,
			Key:   fmt.Sprintf("k%02d", i),
			Value: []byte(fmt.Sprintf("v%02d", i)),
		}))
	}
	chans = append(chans, s.SubmitPrivate("collA", "pk", []byte("secret")))
	for i, ch := range chans {
		if res := <-ch; res.Err != nil {
			t.Fatalf("tx %d: %v", i, res.Err)
		}
	}
	// Let every backup execute (the client acks after a quorum), then
	// shut storage down cleanly.
	waitHeights(t, s)
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// "Process restart": fresh network, same directories.
	net2 := netsim.New(netsim.Config{})
	s2, err := NewShard(net2, durableShardCfg(dir))
	if err != nil {
		t.Fatalf("reopening shard from %s: %v", dir, err)
	}
	defer s2.Close()
	for _, p := range s2.Peers() {
		for i := 0; i < n; i++ {
			got, err := p.Get(fmt.Sprintf("k%02d", i))
			if err != nil || string(got) != fmt.Sprintf("v%02d", i) {
				t.Fatalf("%s: recovered Get(k%02d) = %q, %v", p.ID(), i, got, err)
			}
		}
		if bad, err := VerifyBlocks(p.Blocks()); err != nil {
			t.Fatalf("%s: recovered chain invalid at block %d: %v", p.ID(), bad, err)
		}
	}
	// The private value was off-chain: members keep its hash (the chain
	// verifies), but GetPrivate reports the value missing until the
	// writer redistributes it.
	if _, err := s2.Peers()[0].GetPrivate("collA", "pk"); err == nil {
		t.Fatal("private VALUE should not survive a disk-only recovery")
	}

	// The recovered shard accepts fresh transactions (no dedup collision
	// with the previous incarnation's tx IDs or client sequence).
	res := <-s2.SubmitAsync(Tx{Kind: TxPut, Key: "post", Value: []byte("restart")})
	if res.Err != nil {
		t.Fatalf("post-restart submit: %v", res.Err)
	}
	if got, err := s2.Peers()[0].Get("post"); err != nil || string(got) != "restart" {
		t.Fatalf("post-restart Get = %q, %v", got, err)
	}
}

// waitHeights waits until every peer in the shard is at the same height.
func waitHeights(t *testing.T, s *Shard) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		h := s.Peers()[0].Height()
		same := true
		for _, p := range s.Peers() {
			if p.Height() != h {
				same = false
			}
		}
		if same {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("peers did not converge on one height")
}
