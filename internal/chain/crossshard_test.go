package chain

import (
	"fmt"
	"testing"
	"time"

	"prever/internal/netsim"
	"prever/internal/store"
)

// TestCrossShardAbortDiscardsPreparedWrites drives the 2PC abort path
// directly: a prepare followed by an abort must leave no trace in the
// world state, and a later commit for the same xid must be a no-op.
func TestCrossShardAbortDiscardsPreparedWrites(t *testing.T) {
	net := netsim.New(netsim.Config{})
	defer net.Close()
	s, err := NewShard(net, ShardConfig{Name: "ab", F: 1, Timeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	writes := []Tx{{Kind: TxPut, Key: "k", Value: []byte("v")}}
	if err := submitWait(s, Tx{Kind: TxCrossPrepare, XID: "x1", Writes: writes}); err != nil {
		t.Fatal(err)
	}
	if err := submitWait(s, Tx{Kind: TxCrossAbort, XID: "x1"}); err != nil {
		t.Fatal(err)
	}
	// Commit after abort must not resurrect the writes.
	if err := submitWait(s, Tx{Kind: TxCrossCommit, XID: "x1"}); err != nil {
		t.Fatal(err)
	}
	waitShardHeight(t, s, 3)
	for _, p := range s.Peers() {
		if _, err := p.Get("k"); err != store.ErrNotFound {
			t.Fatalf("peer %s applied aborted writes: %v", p.ID(), err)
		}
	}
}

// TestCrossShardCommitWithoutPrepareIsNoop: a commit for an unknown xid
// must not corrupt state.
func TestCrossShardCommitWithoutPrepareIsNoop(t *testing.T) {
	net := netsim.New(netsim.Config{})
	defer net.Close()
	s, err := NewShard(net, ShardConfig{Name: "np", F: 1, Timeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if err := submitWait(s, Tx{Kind: TxCrossCommit, XID: "ghost"}); err != nil {
		t.Fatal(err)
	}
	waitShardHeight(t, s, 1)
	if bad, err := VerifyBlocks(s.Peers()[0].Blocks()); bad != -1 {
		t.Fatalf("chain corrupt after no-op commit: %v", err)
	}
}

// TestPutOnceFirstWriterWins exercises the spent-token primitive.
func TestPutOnceFirstWriterWins(t *testing.T) {
	net := netsim.New(netsim.Config{})
	defer net.Close()
	s, err := NewShard(net, ShardConfig{Name: "po", F: 1, Timeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if err := submitWait(s, Tx{Kind: TxPutOnce, Key: "spent/serial1", Value: []byte("claimA")}); err != nil {
		t.Fatal(err)
	}
	if err := submitWait(s, Tx{Kind: TxPutOnce, Key: "spent/serial1", Value: []byte("claimB")}); err != nil {
		t.Fatal(err)
	}
	waitShardHeight(t, s, 2)
	for _, p := range s.Peers() {
		v, err := p.Get("spent/serial1")
		if err != nil || string(v) != "claimA" {
			t.Fatalf("peer %s: %q, %v (second writer overwrote)", p.ID(), v, err)
		}
	}
}

func waitShardHeight(t *testing.T, s *Shard, h int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for _, p := range s.Peers() {
		for time.Now().Before(deadline) && p.Height() < h {
			time.Sleep(time.Millisecond)
		}
		if p.Height() < h {
			t.Fatalf("peer %s height %d < %d", p.ID(), p.Height(), h)
		}
	}
}

// TestCrossShardPartialPrepareAborts: when one shard cannot prepare (its
// consensus is partitioned), the coordinator aborts the prepared shards
// and no write becomes visible anywhere.
func TestCrossShardPartialPrepareAborts(t *testing.T) {
	net := netsim.New(netsim.Config{})
	defer net.Close()
	var shards []*Shard
	for i := 0; i < 2; i++ {
		s, err := NewShard(net, ShardConfig{Name: fmt.Sprintf("ps%d", i), F: 1, Timeout: 300 * time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		shards = append(shards, s)
	}
	c, err := NewSharded(shards...)
	if err != nil {
		t.Fatal(err)
	}
	// Find keys on each shard.
	var k0, k1 string
	for i := 0; k0 == "" || k1 == ""; i++ {
		k := fmt.Sprintf("key-%d", i)
		if c.ShardFor(k) == shards[0] && k0 == "" {
			k0 = k
		}
		if c.ShardFor(k) == shards[1] && k1 == "" {
			k1 = k
		}
	}
	// Break shard 1's quorum: isolate three of its four peers.
	net.Partition(
		[]string{"ps1/peer1"}, []string{"ps1/peer2"}, []string{"ps1/peer3"},
	)
	err = c.SubmitCross([]Tx{
		{Kind: TxPut, Key: k0, Value: []byte("left")},
		{Kind: TxPut, Key: k1, Value: []byte("right")},
	})
	if err == nil {
		t.Fatal("cross-shard tx succeeded with a dead shard")
	}
	net.Heal()
	// After healing, neither key may be visible (atomicity).
	time.Sleep(50 * time.Millisecond)
	if _, gerr := shards[0].Peers()[0].Get(k0); gerr != store.ErrNotFound {
		t.Fatalf("aborted cross-shard write visible on shard 0: %v", gerr)
	}
	if _, gerr := shards[1].Peers()[0].Get(k1); gerr != store.ErrNotFound {
		t.Fatalf("aborted cross-shard write visible on shard 1: %v", gerr)
	}
}
