package chain

import (
	"errors"
	"fmt"
	"time"

	"prever/internal/conf"
	"prever/internal/mempool"
)

// The asynchronous batch-first submission surface — the ONE submission
// API; the HTTP serving layer (internal/api, cmd/prever-server) fronts
// exactly this. Transactions enter the shard's mempool (duplicate-
// suppressed, admission-controlled, lane-ordered by key) and resolve when
// the batch they rode in commits:
//
//	SubmitAsync(tx)  → <-chan Result   one tx, resolve later
//	SubmitBatch(txs) → []Result        many txs, resolved in input order
//
// Per-producer ordering: transactions with the same key share a mempool
// lane and are proposed — and, with ordered batch dispatch, applied — in
// submission order.

// Result is the outcome of one asynchronous transaction submission.
type Result struct {
	// TxID is the transaction's identity (assigned at submission when the
	// caller left it empty), usable for later proofs and audits.
	TxID string
	// Err is nil once the transaction's batch committed. The typed
	// sentinels in errors.go classify the failure: ErrPoolFull (back off
	// and retry), ErrDuplicate (already committed — a success with a
	// flag), ErrShardClosed, ErrTxTooLarge.
	Err error
}

// submitWait is the synchronous helper the 2PC coordinator and tests use
// for one-at-a-time semantics over the async surface.
func submitWait(s *Shard, tx Tx) error { return (<-s.SubmitAsync(tx)).Err }

// Stats mirrors the Engine Stats shape (core.Stats) for the consensus
// submission path — Accepted+Duplicates+Rejected+Errors converges to
// Submitted when the shard is quiescent — and adds the mempool's view:
// queue depth, admission rejections, and the proposed-batch size
// histogram. Sharded aggregates it across shards with Merge. The JSON
// tags are the wire shape: internal/api serves exactly this struct at
// /stats (per shard and aggregated), and `make bench-json` records it.
type Stats struct {
	Submitted  int64 `json:"submitted"`  // transactions entering SubmitAsync
	Accepted   int64 `json:"accepted"`   // transactions whose batch committed
	Duplicates int64 `json:"duplicates"` // dedup-acked resubmissions (ErrDuplicate)
	Rejected   int64 `json:"rejected"`   // admission-control rejections (ErrPoolFull)
	Errors     int64 `json:"errors"`     // submission failures (budget exhausted, shard closed, oversized)
	// TotalCommitNanos accumulates wall time from submission to ack;
	// divide by Accepted for the mean commit latency.
	TotalCommitNanos int64 `json:"totalCommitNanos"`
	// Pool is the mempool snapshot (Depth, InFlight, dedup counters).
	Pool mempool.PoolStats `json:"pool"`
	// Batches is the proposed-batch histogram (size buckets, mean, max).
	Batches mempool.BatchStats `json:"batches"`
}

// MeanCommitLatency returns the average submission-to-commit time.
func (s Stats) MeanCommitLatency() time.Duration {
	if s.Accepted == 0 {
		return 0
	}
	return time.Duration(s.TotalCommitNanos / s.Accepted)
}

// Merge accumulates o into s (cross-shard aggregation). Gauges (Depth,
// InFlight) sum — the aggregate reads as total backlog.
func (s *Stats) Merge(o Stats) {
	s.Submitted += o.Submitted
	s.Accepted += o.Accepted
	s.Duplicates += o.Duplicates
	s.Rejected += o.Rejected
	s.Errors += o.Errors
	s.TotalCommitNanos += o.TotalCommitNanos
	s.Pool.Depth += o.Pool.Depth
	s.Pool.InFlight += o.Pool.InFlight
	s.Pool.Admitted += o.Pool.Admitted
	s.Pool.RejectedFull += o.Pool.RejectedFull
	s.Pool.DupPending += o.Pool.DupPending
	s.Pool.DupExecuted += o.Pool.DupExecuted
	s.Pool.Acked += o.Pool.Acked
	s.Pool.Failed += o.Pool.Failed
	s.Batches.Merge(o.Batches)
}

// laneOf picks the mempool ordering key for a transaction: the row key
// (per-key submission order survives batching), the cross-shard id for
// keyless 2PC phases, the transaction id as a last resort.
func laneOf(tx Tx) string {
	switch {
	case tx.Key != "":
		return tx.Key
	case tx.XID != "":
		return tx.XID
	default:
		return tx.ID
	}
}

// SubmitAsync admits a transaction to the mempool and returns a buffered
// channel that receives its Result exactly once. An empty tx.ID is
// assigned here; callers that retry a failed submission should reuse the
// returned TxID so the mempool's duplicate suppression can collapse the
// retry (a retried transaction that is still pending, or that committed
// within the dedup TTL, is acked without being proposed again).
func (s *Shard) SubmitAsync(tx Tx) <-chan Result {
	ch := make(chan Result, 1)
	if tx.ID == "" {
		tx.ID = fmt.Sprintf("%s-%s-tx-%d", s.Name, s.nonce, s.seq.Add(1))
	}
	id := tx.ID
	start := time.Now()
	s.statsMu.Lock()
	s.stats.Submitted++
	s.statsMu.Unlock()
	data := txBytes(tx)
	if max := conf.MaxTxBytes(); len(data) > max {
		err := fmt.Errorf("%w: %d bytes (limit %d)", ErrTxTooLarge, len(data), max)
		s.recordOutcome(start, err)
		ch <- Result{TxID: id, Err: err}
		return ch
	}
	err := s.pool.Add(mempool.Op{ID: id, Lane: laneOf(tx), Data: data}, func(err error) {
		err = sentinelErr(err)
		s.recordOutcome(start, err)
		ch <- Result{TxID: id, Err: err}
	})
	if err != nil {
		err = sentinelErr(err)
		s.recordOutcome(start, err)
		ch <- Result{TxID: id, Err: err}
	}
	return ch
}

// SubmitBatch admits transactions in order and waits for all of them,
// returning results in input order. Transactions sharing a key keep their
// relative order through consensus.
func (s *Shard) SubmitBatch(txs []Tx) []Result {
	chans := make([]<-chan Result, len(txs))
	for i, tx := range txs {
		chans[i] = s.SubmitAsync(tx)
	}
	out := make([]Result, len(txs))
	for i, ch := range chans {
		out[i] = <-ch
	}
	return out
}

func (s *Shard) recordOutcome(start time.Time, err error) {
	ns := time.Since(start).Nanoseconds()
	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	switch {
	case err == nil:
		s.stats.Accepted++
		s.stats.TotalCommitNanos += ns
	case errors.Is(err, ErrDuplicate):
		// The original committed; this resubmission was only acked, so it
		// neither counts as a fresh commit nor pollutes commit latency.
		s.stats.Duplicates++
	case errors.Is(err, mempool.ErrFull):
		s.stats.Rejected++
	default:
		s.stats.Errors++
	}
}

// Stats snapshots the shard's submission counters, mempool state, and
// batch histogram.
func (s *Shard) Stats() Stats {
	s.statsMu.Lock()
	st := s.stats
	s.statsMu.Unlock()
	st.Pool = s.pool.Stats()
	st.Batches = s.batcher.Stats()
	return st
}

// Stats aggregates submission statistics across every shard.
func (c *Sharded) Stats() Stats {
	var total Stats
	for _, s := range c.shards {
		total.Merge(s.Stats())
	}
	return total
}

// SubmitBatch routes a batch of single-shard transactions to their home
// shards and waits for all of them, returning results in input order.
func (c *Sharded) SubmitBatch(txs []Tx) []Result {
	chans := make([]<-chan Result, len(txs))
	for i, tx := range txs {
		chans[i] = c.ShardFor(tx.Key).SubmitAsync(tx)
	}
	out := make([]Result, len(txs))
	for i, ch := range chans {
		out[i] = <-ch
	}
	return out
}

// Close shuts down every shard's submission front end.
func (c *Sharded) Close() error {
	var firstErr error
	for _, s := range c.shards {
		if err := s.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
