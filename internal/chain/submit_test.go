package chain

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"prever/internal/mempool"
	"prever/internal/netsim"
)

// appliedIDs collects every tx id applied at a peer, in order.
func appliedIDs(p *Peer) []string {
	var out []string
	for _, b := range p.Blocks() {
		for _, tx := range b.Txs {
			out = append(out, tx.ID)
		}
	}
	return out
}

func TestSubmitBatchCommitsAllAndBatches(t *testing.T) {
	net := netsim.New(netsim.Config{})
	t.Cleanup(net.Close)
	s, err := NewShard(net, ShardConfig{
		Name:    "b0",
		F:       1,
		Timeout: 5 * time.Second,
		Mempool: mempool.Config{BatchSize: 16, FlushInterval: time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })

	const n = 64
	txs := make([]Tx, n)
	for i := range txs {
		txs[i] = Tx{Kind: TxPut, Key: fmt.Sprintf("k%d", i), Value: []byte(fmt.Sprintf("v%d", i))}
	}
	for i, res := range s.SubmitBatch(txs) {
		if res.Err != nil {
			t.Fatalf("tx %d: %v", i, res.Err)
		}
		if res.TxID == "" {
			t.Fatalf("tx %d: no id assigned", i)
		}
	}
	for _, p := range s.Peers() {
		deadline := time.Now().Add(5 * time.Second)
		for {
			if ids := appliedIDs(p); len(ids) == n {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("peer %s applied %d/%d txs", p.ID(), len(appliedIDs(p)), n)
			}
			time.Sleep(time.Millisecond)
		}
		for i := 0; i < n; i++ {
			v, err := p.Get(fmt.Sprintf("k%d", i))
			if err != nil || string(v) != fmt.Sprintf("v%d", i) {
				t.Fatalf("peer %s: k%d = %q, %v", p.ID(), i, v, err)
			}
		}
	}
	st := s.Stats()
	if st.Submitted != n || st.Accepted != n || st.Rejected != 0 || st.Errors != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Batches.Batches == 0 || st.Batches.Ops != n {
		t.Fatalf("batch stats = %+v", st.Batches)
	}
	// 64 txs at batch size 16 must not go one-per-instance.
	if st.Batches.Batches >= n {
		t.Fatalf("no batching happened: %d batches for %d txs", st.Batches.Batches, n)
	}
	if st.MeanCommitLatency() <= 0 {
		t.Fatal("mean commit latency not recorded")
	}
}

func TestSubmitAsyncSameKeyKeepsOrder(t *testing.T) {
	net := netsim.New(netsim.Config{Jitter: 100 * time.Microsecond, Seed: 11})
	t.Cleanup(net.Close)
	s, err := NewShard(net, ShardConfig{
		Name:    "ord",
		F:       1,
		Timeout: 5 * time.Second,
		Mempool: mempool.Config{BatchSize: 8, FlushInterval: time.Millisecond, MaxInFlight: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })

	// All writes hit one key: the final value must be the last submitted.
	const n = 40
	var chans []<-chan Result
	for i := 0; i < n; i++ {
		chans = append(chans, s.SubmitAsync(Tx{Kind: TxPut, Key: "counter", Value: []byte(fmt.Sprintf("%d", i))}))
	}
	for i, ch := range chans {
		if res := <-ch; res.Err != nil {
			t.Fatalf("tx %d: %v", i, res.Err)
		}
	}
	for _, p := range s.Peers() {
		deadline := time.Now().Add(5 * time.Second)
		var v []byte
		for time.Now().Before(deadline) {
			v, _ = p.Get("counter")
			if string(v) == fmt.Sprintf("%d", n-1) {
				break
			}
			time.Sleep(time.Millisecond)
		}
		if string(v) != fmt.Sprintf("%d", n-1) {
			t.Fatalf("peer %s: counter = %q, want %d", p.ID(), v, n-1)
		}
	}
}

func TestMempoolAdmissionControlRejects(t *testing.T) {
	net := netsim.New(netsim.Config{})
	t.Cleanup(net.Close)
	s, err := NewShard(net, ShardConfig{
		Name:    "full",
		F:       1,
		Timeout: 5 * time.Second,
		// A tiny pool with a long flush interval: adds pile up un-drained.
		Mempool: mempool.Config{Cap: 4, BatchSize: 64, FlushInterval: time.Minute, MaxInFlight: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	var rejected int
	var pending []<-chan Result
	for i := 0; i < 12; i++ {
		ch := s.SubmitAsync(Tx{Kind: TxPut, Key: fmt.Sprintf("k%d", i), Value: []byte("v")})
		select {
		case res := <-ch:
			if !errors.Is(res.Err, mempool.ErrFull) {
				t.Fatalf("tx %d resolved early with %v", i, res.Err)
			}
			rejected++
		default:
			pending = append(pending, ch)
		}
	}
	if rejected == 0 {
		t.Fatal("no admission rejections despite cap 4")
	}
	if st := s.Stats(); st.Rejected != int64(rejected) || st.Pool.RejectedFull != int64(rejected) {
		t.Fatalf("stats rejected = %d / pool %d, want %d", st.Rejected, st.Pool.RejectedFull, rejected)
	}
	// Close fails the queued remainder; every channel resolves.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	for i, ch := range pending {
		select {
		case res := <-ch:
			if !errors.Is(res.Err, mempool.ErrClosed) {
				t.Fatalf("pending %d: err = %v", i, res.Err)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("pending %d never resolved after Close", i)
		}
	}
}

// TestRetriedTxNotReproposed is the dup-suppression regression test: a
// caller that resubmits the same transaction ID while the first copy is
// pending (or just committed) must not get it proposed twice — under a
// duplicating, jittery network the chains must carry each ID exactly once
// and stay identical across peers.
func TestRetriedTxNotReproposed(t *testing.T) {
	net := netsim.New(netsim.Config{
		Jitter:        200 * time.Microsecond,
		DuplicateRate: 0.2,
		Seed:          42,
	})
	t.Cleanup(net.Close)
	s, err := NewShard(net, ShardConfig{
		Name:    "dup",
		F:       1,
		Timeout: 5 * time.Second,
		Mempool: mempool.Config{BatchSize: 8, FlushInterval: time.Millisecond, MaxInFlight: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })

	const n = 25
	var chans []<-chan Result
	for i := 0; i < n; i++ {
		tx := Tx{ID: fmt.Sprintf("retry-%d", i), Kind: TxPut, Key: fmt.Sprintf("k%d", i), Value: []byte("v")}
		// Submit every transaction three times: once normally, once as an
		// immediate client retry (pending dup), and once more for luck.
		chans = append(chans, s.SubmitAsync(tx), s.SubmitAsync(tx), s.SubmitAsync(tx))
	}
	for i, ch := range chans {
		// Dups that land after their first copy committed are acked with
		// ErrDuplicate — an explicit "already done", not a failure.
		if res := <-ch; res.Err != nil && !errors.Is(res.Err, ErrDuplicate) {
			t.Fatalf("submission %d: %v", i, res.Err)
		}
	}
	st := s.Stats()
	if st.Pool.DupPending+st.Pool.DupExecuted != 2*n {
		t.Fatalf("dup counters = %d pending + %d executed, want %d total",
			st.Pool.DupPending, st.Pool.DupExecuted, 2*n)
	}
	// Every peer's chain carries each ID exactly once, and all chains are
	// identical.
	waitIDs := func(p *Peer) []string {
		deadline := time.Now().Add(5 * time.Second)
		for {
			ids := appliedIDs(p)
			if len(ids) >= n || time.Now().After(deadline) {
				return ids
			}
			time.Sleep(time.Millisecond)
		}
	}
	ref := waitIDs(s.Peers()[0])
	seen := make(map[string]int)
	for _, id := range ref {
		seen[id]++
	}
	for i := 0; i < n; i++ {
		if c := seen[fmt.Sprintf("retry-%d", i)]; c != 1 {
			t.Fatalf("retry-%d applied %d times", i, c)
		}
	}
	for _, p := range s.Peers()[1:] {
		got := waitIDs(p)
		if len(got) != len(ref) {
			t.Fatalf("peer %s applied %d txs, peer 0 applied %d", p.ID(), len(got), len(ref))
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("peer %s applied[%d] = %s, peer 0 has %s", p.ID(), i, got[i], ref[i])
			}
		}
	}
	// A late retry after commit is acked from the executed filter with the
	// ErrDuplicate sentinel.
	late := <-s.SubmitAsync(Tx{ID: "retry-0", Kind: TxPut, Key: "k0", Value: []byte("v")})
	if !errors.Is(late.Err, ErrDuplicate) {
		t.Fatalf("late retry: err = %v, want ErrDuplicate", late.Err)
	}
	if st := s.Stats(); st.Pool.DupExecuted == 0 {
		t.Fatal("late retry did not hit the executed filter")
	}
}

func TestShardedStatsAggregates(t *testing.T) {
	net := netsim.New(netsim.Config{})
	t.Cleanup(net.Close)
	var shards []*Shard
	for i := 0; i < 2; i++ {
		s, err := NewShard(net, ShardConfig{
			Name:    fmt.Sprintf("agg%d", i),
			F:       1,
			Timeout: 5 * time.Second,
			Mempool: mempool.Config{BatchSize: 8, FlushInterval: time.Millisecond},
		})
		if err != nil {
			t.Fatal(err)
		}
		shards = append(shards, s)
	}
	c, err := NewSharded(shards...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })

	const n = 32
	txs := make([]Tx, n)
	for i := range txs {
		txs[i] = Tx{Kind: TxPut, Key: fmt.Sprintf("key-%d", i), Value: []byte("v")}
	}
	for i, res := range c.SubmitBatch(txs) {
		if res.Err != nil {
			t.Fatalf("tx %d: %v", i, res.Err)
		}
	}
	st := c.Stats()
	if st.Submitted != n || st.Accepted != n {
		t.Fatalf("aggregate stats = %+v", st)
	}
	if st.Batches.Ops != n {
		t.Fatalf("aggregate batch ops = %d, want %d", st.Batches.Ops, n)
	}
	// Both shards should have seen traffic (sha256 split across 2 shards
	// over 32 keys makes an empty shard astronomically unlikely).
	for _, s := range shards {
		if s.Stats().Submitted == 0 {
			t.Fatalf("shard %s saw no traffic", s.Name)
		}
	}
}
