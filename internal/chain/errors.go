package chain

import (
	"errors"
	"fmt"

	"prever/internal/mempool"
)

// Typed sentinel errors on the submission path. Callers — and the HTTP
// clients behind internal/api — branch on these with errors.Is instead of
// matching strings; internal/api maps each onto an HTTP status code.
// The first three wrap the mempool sentinel that produced them, so
// errors.Is matches at either level.
var (
	// ErrPoolFull reports that admission control refused the transaction:
	// the mempool is at its cap. Back off and retry (HTTP 429).
	ErrPoolFull = fmt.Errorf("chain: submission rejected: %w", mempool.ErrFull)
	// ErrDuplicate reports that the transaction's ID already committed
	// within the dedup TTL. The submission is acknowledged — the original
	// is on chain — but nothing was proposed again (HTTP 409).
	ErrDuplicate = fmt.Errorf("chain: duplicate transaction: %w", mempool.ErrDuplicate)
	// ErrShardClosed reports that the shard's submission front end has
	// shut down (HTTP 503).
	ErrShardClosed = fmt.Errorf("chain: shard closed: %w", mempool.ErrClosed)
	// ErrTxTooLarge reports that the encoded transaction exceeds the
	// conf.MaxTxBytes bound (HTTP 413).
	ErrTxTooLarge = errors.New("chain: transaction too large")
)

// sentinelErr lifts a mempool-level error onto the chain-level sentinel;
// other errors (consensus timeouts and the like) pass through unchanged.
func sentinelErr(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, mempool.ErrFull):
		return ErrPoolFull
	case errors.Is(err, mempool.ErrDuplicate):
		return ErrDuplicate
	case errors.Is(err, mempool.ErrClosed):
		return ErrShardClosed
	default:
		return err
	}
}
