// Package chain implements a permissioned blockchain on top of the PBFT
// substrate: hash-chained blocks with Merkle transaction roots, a
// materialized world state per peer, Fabric-style private data collections
// (only a hash on chain; the value distributed to collection members), and
// SharPer-style sharding with two-phase cross-shard transactions.
//
// This is PReVer's integrity layer for federated settings (Research
// Challenge 4): mutually distrustful data managers run peers; updates
// become transactions ordered by PBFT; any participant can audit the
// block chain and prove a transaction's inclusion.
package chain

import (
	"crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"prever/internal/conf"
	"prever/internal/mempool"
	"prever/internal/merkle"
	"prever/internal/netsim"
	"prever/internal/pbft"
	"prever/internal/store"
)

// TxKind is the transaction type.
type TxKind uint8

// Supported transaction kinds.
const (
	TxPut TxKind = iota + 1
	TxDelete
	TxPrivatePut   // public hash, private value held by collection members
	TxCrossPrepare // phase 1 of a cross-shard transaction
	TxCrossCommit  // phase 2: apply the prepared writes
	TxCrossAbort   // phase 2 alternative: discard the prepared writes
	TxPutOnce      // write only if the key is absent (first writer wins)
)

// Tx is one blockchain transaction.
type Tx struct {
	ID         string   `json:"id"`
	Kind       TxKind   `json:"kind"`
	Collection string   `json:"collection,omitempty"` // private collections only
	Key        string   `json:"key,omitempty"`
	Value      []byte   `json:"value,omitempty"`
	ValueHash  [32]byte `json:"valueHash,omitempty"` // private puts
	XID        string   `json:"xid,omitempty"`       // cross-shard tx id
	Writes     []Tx     `json:"writes,omitempty"`    // cross-prepare payload
}

// Block is one chained block of transactions.
type Block struct {
	Height   uint64   `json:"height"`
	PrevHash [32]byte `json:"prev"`
	TxRoot   [32]byte `json:"txroot"`
	Txs      []Tx     `json:"txs"`
	Hash     [32]byte `json:"hash"`
}

func txBytes(tx Tx) []byte {
	b, err := json.Marshal(tx)
	if err != nil {
		panic(fmt.Sprintf("chain: marshal tx: %v", err))
	}
	return b
}

func txRoot(txs []Tx) [32]byte {
	t := merkle.New()
	for _, tx := range txs {
		t.Append(txBytes(tx))
	}
	return [32]byte(t.Root())
}

func blockHash(b *Block) [32]byte {
	h := sha256.New()
	var height [8]byte
	for i := 0; i < 8; i++ {
		height[i] = byte(b.Height >> (8 * i))
	}
	h.Write(height[:])
	h.Write(b.PrevHash[:])
	h.Write(b.TxRoot[:])
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// HashValue hashes a private value the way TxPrivatePut expects.
func HashValue(v []byte) [32]byte { return sha256.Sum256(v) }

// Peer is one organization's node: it holds the block chain, the public
// world state, and the private collections it is a member of.
type Peer struct {
	id          string
	collections map[string]bool

	mu        sync.Mutex
	blocks    []Block
	state     *store.KV
	private   map[string]*store.KV // collection -> private state
	pendingP  map[string][]byte    // txID -> private value awaiting commit
	prepared  map[string][]Tx      // xid -> prepared cross-shard writes
	appliedTx map[string]bool      // txID -> already applied (exactly-once)
}

func newPeer(id string, collections []string) *Peer {
	p := &Peer{
		id:          id,
		collections: make(map[string]bool),
		state:       store.NewKV(),
		private:     make(map[string]*store.KV),
		pendingP:    make(map[string][]byte),
		prepared:    make(map[string][]Tx),
		appliedTx:   make(map[string]bool),
	}
	for _, c := range collections {
		p.collections[c] = true
		p.private[c] = store.NewKV()
	}
	return p
}

// ID returns the peer id.
func (p *Peer) ID() string { return p.id }

// Height returns the number of blocks.
func (p *Peer) Height() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.blocks)
}

// Blocks exports a copy of the chain for auditing.
func (p *Peer) Blocks() []Block {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]Block, len(p.blocks))
	copy(out, p.blocks)
	return out
}

// Get reads the public world state.
func (p *Peer) Get(key string) ([]byte, error) {
	return p.state.Get(key)
}

// GetPrivate reads a private collection this peer is a member of.
func (p *Peer) GetPrivate(collection, key string) ([]byte, error) {
	p.mu.Lock()
	kv, ok := p.private[collection]
	p.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("chain: peer %s is not a member of collection %q", p.id, collection)
	}
	return kv.Get(key)
}

// StagePrivateValue pre-positions a private value (distributed off-chain
// by the writer) so that when the on-chain hash commits, the peer can
// validate and store it.
func (p *Peer) StagePrivateValue(txID string, value []byte) {
	p.mu.Lock()
	defer p.mu.Unlock()
	cp := make([]byte, len(value))
	copy(cp, value)
	p.pendingP[txID] = cp
}

// applyBatch turns one executed PBFT batch into a block and applies it.
// Transactions whose ID already applied are dropped first: a consensus
// client that times out and retries can commit the same transaction into
// two instances, and this filter is what keeps the chain exactly-once.
// The dedup map is unbounded and keyed only by the executed sequence —
// every peer applies the same instances in the same order, so every peer
// drops the same duplicates and the chains stay identical (a TTL filter
// here would make the drop decision depend on wall-clock timing and let
// replicas diverge).
func (p *Peer) applyBatch(txs []Tx) {
	p.mu.Lock()
	defer p.mu.Unlock()
	fresh := make([]Tx, 0, len(txs))
	for _, tx := range txs {
		if tx.ID != "" {
			if p.appliedTx[tx.ID] {
				continue
			}
			p.appliedTx[tx.ID] = true
		}
		fresh = append(fresh, tx)
	}
	if len(fresh) == 0 {
		return
	}
	txs = fresh
	blk := Block{
		Height: uint64(len(p.blocks)),
		TxRoot: txRoot(txs),
		Txs:    txs,
	}
	if len(p.blocks) > 0 {
		blk.PrevHash = p.blocks[len(p.blocks)-1].Hash
	}
	blk.Hash = blockHash(&blk)
	p.blocks = append(p.blocks, blk)
	for _, tx := range txs {
		p.applyTxLocked(tx)
	}
}

func (p *Peer) applyTxLocked(tx Tx) {
	switch tx.Kind {
	case TxPut:
		p.state.Put(tx.Key, tx.Value)
	case TxPutOnce:
		if _, err := p.state.Get(tx.Key); err != nil {
			p.state.Put(tx.Key, tx.Value)
		}
	case TxDelete:
		p.state.Delete(tx.Key)
	case TxPrivatePut:
		// On-chain: record the hash publicly so everyone can audit.
		p.state.Put("hash/"+tx.Collection+"/"+tx.Key, tx.ValueHash[:])
		// Members store the value if the staged copy matches the hash.
		if p.collections[tx.Collection] {
			if v, ok := p.pendingP[tx.ID]; ok && HashValue(v) == tx.ValueHash {
				p.private[tx.Collection].Put(tx.Key, v)
			}
			delete(p.pendingP, tx.ID)
		}
	case TxCrossPrepare:
		p.prepared[tx.XID] = tx.Writes
	case TxCrossCommit:
		if writes, ok := p.prepared[tx.XID]; ok {
			for _, w := range writes {
				p.applyTxLocked(w)
			}
			delete(p.prepared, tx.XID)
		}
	case TxCrossAbort:
		delete(p.prepared, tx.XID)
	}
}

// VerifyBlocks audits an exported chain: hash links and transaction roots.
// Returns the height of the first bad block, or -1 if clean.
func VerifyBlocks(blocks []Block) (int, error) {
	var prev [32]byte
	for i := range blocks {
		b := &blocks[i]
		if b.Height != uint64(i) {
			return i, fmt.Errorf("chain: block %d has height %d", i, b.Height)
		}
		if b.PrevHash != prev {
			return i, fmt.Errorf("chain: block %d breaks the hash chain", i)
		}
		if txRoot(b.Txs) != b.TxRoot {
			return i, fmt.Errorf("chain: block %d transaction root mismatch", i)
		}
		if blockHash(b) != b.Hash {
			return i, fmt.Errorf("chain: block %d hash mismatch", i)
		}
		prev = b.Hash
	}
	return -1, nil
}

// ProveTx builds a Merkle inclusion proof for transaction index txIdx of
// block height h, verifiable against the block's TxRoot.
func (p *Peer) ProveTx(height uint64, txIdx int) (merkle.InclusionProof, Tx, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if height >= uint64(len(p.blocks)) {
		return merkle.InclusionProof{}, Tx{}, fmt.Errorf("chain: height %d beyond chain (%d)", height, len(p.blocks))
	}
	blk := p.blocks[height]
	if txIdx < 0 || txIdx >= len(blk.Txs) {
		return merkle.InclusionProof{}, Tx{}, fmt.Errorf("chain: tx index %d out of range", txIdx)
	}
	t := merkle.New()
	for _, tx := range blk.Txs {
		t.Append(txBytes(tx))
	}
	proof, err := t.ProveInclusion(txIdx, len(blk.Txs))
	if err != nil {
		return merkle.InclusionProof{}, Tx{}, err
	}
	return proof, blk.Txs[txIdx], nil
}

// VerifyTxProof checks a transaction inclusion proof against a block.
func VerifyTxProof(proof merkle.InclusionProof, tx Tx, blk Block) error {
	return merkle.VerifyInclusion(proof, txBytes(tx), merkle.Hash(blk.TxRoot))
}

// Shard is one PBFT cluster of peers ordering a partition of the key
// space. Submission is batch-first: transactions enter a mempool, a
// leader-side batcher drains them into batched PBFT requests with
// pipelined in-flight instances, and per-transaction results come back
// asynchronously (SubmitAsync / SubmitBatch).
type Shard struct {
	Name     string
	nonce    string // boot nonce: disambiguates client identity and tx IDs across restarts
	durable  bool
	peers    []*Peer
	replicas []*pbft.Replica
	client   *pbft.Client
	pool     *mempool.Pool
	batcher  *mempool.Batcher
	seq      atomic.Uint64
	timeout  time.Duration

	statsMu sync.Mutex
	stats   Stats
}

// ShardConfig configures one shard.
type ShardConfig struct {
	Name        string
	F           int                 // tolerated Byzantine peers (n = 3f+1)
	Collections map[string][]string // collection -> member peer ids
	PBFT        pbft.Options
	Timeout     time.Duration  // per-transaction commit timeout
	Mempool     mempool.Config // zero fields default from conf.Snapshot
	// DataDir, when set, makes every peer's PBFT replica crash-durable:
	// consensus state is journaled to a WAL under DataDir/<peerID> and
	// the peer's chain is snapshot-restored on reopen. Empty means
	// in-memory (state dies with the process).
	DataDir string
	// SnapshotEvery is the executed-sequence cadence between durable
	// snapshots. Zero defaults from conf.Snapshot().SnapshotEvery.
	SnapshotEvery uint64
}

// NewShard builds a shard of 3F+1 peers on the network.
func NewShard(net *netsim.Network, cfg ShardConfig) (*Shard, error) {
	if cfg.F < 1 {
		return nil, errors.New("chain: f must be >= 1")
	}
	if cfg.Timeout == 0 {
		cfg.Timeout = 10 * time.Second
	}
	n := 3*cfg.F + 1
	ids := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("%s/peer%d", cfg.Name, i)
	}
	memberOf := func(peerID string) []string {
		var out []string
		for coll, members := range cfg.Collections {
			for _, m := range members {
				if m == peerID {
					out = append(out, coll)
				}
			}
		}
		return out
	}
	s := &Shard{Name: cfg.Name, nonce: bootNonce(), durable: cfg.DataDir != "", timeout: cfg.Timeout}
	for _, id := range ids {
		peer := newPeer(id, memberOf(id))
		s.peers = append(s.peers, peer)
		applier := func(_ uint64, batch []pbft.Request) {
			txs := make([]Tx, 0, len(batch))
			decode := func(op []byte) {
				var tx Tx
				if json.Unmarshal(op, &tx) == nil {
					txs = append(txs, tx)
				}
			}
			for _, req := range batch {
				// A request is either one mempool batch (fanned back out
				// into its transactions) or a bare single transaction from
				// the synchronous path.
				if ops, ok := pbft.DecodeBatch(req.Op); ok {
					for _, op := range ops {
						decode(op)
					}
				} else {
					decode(req.Op)
				}
			}
			if len(txs) > 0 {
				peer.applyBatch(txs)
			}
		}
		var replica *pbft.Replica
		var err error
		if cfg.DataDir != "" {
			snapEvery := cfg.SnapshotEvery
			if snapEvery == 0 {
				snapEvery = conf.SnapshotEvery()
			}
			// Peer IDs like "shard0/peer3" nest naturally as directories.
			replica, err = pbft.NewDurableReplica(net, id, ids, cfg.F, applier, cfg.PBFT, pbft.DurableOptions{
				Dir:           filepath.Join(cfg.DataDir, id),
				App:           peer,
				SnapshotEvery: snapEvery,
				SegmentBytes:  conf.WALSegmentBytes(),
			})
		} else {
			replica, err = pbft.NewReplica(net, id, ids, cfg.F, applier, cfg.PBFT)
		}
		if err != nil {
			return nil, err
		}
		s.replicas = append(s.replicas, replica)
	}
	if cfg.DataDir != "" {
		// Recovered replicas replayed their WALs to wherever each one's
		// fsync happened to land at kill time, so their execution points
		// can differ by a few sequences. Sync state-transfers the delta
		// and re-votes certified-but-unexecuted instances; without it a
		// lagging replica converges only if fresh traffic happens to
		// trigger the transfer path.
		for _, r := range s.replicas {
			r.Sync()
		}
	}
	// The client name and tx IDs carry the boot nonce: a restarted process
	// reuses the same client identity namespace otherwise, and its
	// restarted sequence counter / tx counter would collide with the
	// recovered dedup state (executedR, appliedTx) — silently dropping
	// fresh transactions as "already executed".
	client, err := pbft.NewClient(net, s.replicas, "chain/"+cfg.Name+"/"+s.nonce, pbft.ClientOptions{})
	if err != nil {
		return nil, err
	}
	s.client = client
	s.pool = mempool.NewPool(cfg.Mempool)
	s.batcher = mempool.NewBatcher(s.pool, func(ops [][]byte) func() error {
		// Start assigns the client sequence number and hands the batch to
		// the primary before returning, fixing the commit order of
		// pipelined batches at dispatch time.
		p := s.client.StartBatch(ops)
		return func() error { return p.Wait(s.timeout) }
	})
	return s, nil
}

// bootNonce returns a short random token unique to this process
// incarnation.
func bootNonce() string {
	var b [6]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("chain: boot nonce: %v", err))
	}
	return hex.EncodeToString(b[:])
}

// Close stops the shard's batcher and fails any queued transactions with
// an error, then (for durable shards) syncs and closes every replica's
// journal. The consensus replicas keep running in memory (they belong to
// the network); only the submission front end and storage shut down.
func (s *Shard) Close() error {
	s.batcher.Stop()
	err := s.pool.Close()
	if s.durable {
		for _, r := range s.replicas {
			if cerr := r.CloseStorage(); cerr != nil && err == nil {
				err = cerr
			}
		}
	}
	return err
}

// Peers returns the shard's peers.
func (s *Shard) Peers() []*Peer { return s.peers }

// Replicas returns the shard's PBFT replicas, for fault injection in
// tests and benchmarks (Crash/Restart/Sync).
func (s *Shard) Replicas() []*pbft.Replica { return s.replicas }

// SubmitPrivate distributes a private value to collection members
// off-chain, then orders the on-chain hash through the mempool like any
// other transaction: the returned channel resolves when the hash
// transaction's batch commits.
func (s *Shard) SubmitPrivate(collection, key string, value []byte) <-chan Result {
	tx := Tx{
		ID:         fmt.Sprintf("%s-%s-ptx-%d", s.Name, s.nonce, s.seq.Add(1)),
		Kind:       TxPrivatePut,
		Collection: collection,
		Key:        key,
		ValueHash:  HashValue(value),
	}
	for _, p := range s.peers {
		if p.collections[collection] {
			p.StagePrivateValue(tx.ID, value)
		}
	}
	return s.SubmitAsync(tx)
}

// Sharded is a SharPer-style multi-shard chain: the key space is
// partitioned across shards; cross-shard transactions run a two-phase
// prepare/commit with the client as coordinator, each phase ordered by the
// involved shards' consensus.
type Sharded struct {
	shards []*Shard
	nonce  string // boot nonce: keeps cross-shard XIDs from colliding with recovered prepares
	xseq   atomic.Uint64
}

// NewSharded groups shards into one logical chain.
func NewSharded(shards ...*Shard) (*Sharded, error) {
	if len(shards) == 0 {
		return nil, errors.New("chain: need at least one shard")
	}
	return &Sharded{shards: shards, nonce: bootNonce()}, nil
}

// Shards returns the shard list.
func (c *Sharded) Shards() []*Shard { return c.shards }

// ShardFor maps a key to its home shard.
func (c *Sharded) ShardFor(key string) *Shard {
	h := sha256.Sum256([]byte(key))
	idx := int(h[0]) % len(c.shards)
	return c.shards[idx]
}

// SubmitAsync routes a single-shard transaction to its home shard's
// mempool and returns that shard's result channel.
func (c *Sharded) SubmitAsync(tx Tx) <-chan Result {
	return c.ShardFor(tx.Key).SubmitAsync(tx)
}

// SubmitPrivate routes a private put to the key's home shard.
func (c *Sharded) SubmitPrivate(collection, key string, value []byte) <-chan Result {
	return c.ShardFor(key).SubmitPrivate(collection, key, value)
}

// SubmitCross atomically applies writes that span multiple shards:
// phase 1 orders a prepare (carrying each shard's writes) on every
// involved shard; phase 2 orders the commit. If any prepare fails, aborts
// are sent to the prepared shards.
func (c *Sharded) SubmitCross(writes []Tx) error {
	if len(writes) == 0 {
		return nil
	}
	xid := fmt.Sprintf("xtx-%s-%d", c.nonce, c.xseq.Add(1))
	// Group writes by home shard.
	byShard := make(map[*Shard][]Tx)
	for _, w := range writes {
		s := c.ShardFor(w.Key)
		byShard[s] = append(byShard[s], w)
	}
	// Phase 1: prepare everywhere.
	var preparedShards []*Shard
	for s, ws := range byShard {
		err := submitWait(s, Tx{Kind: TxCrossPrepare, XID: xid, Writes: ws})
		if err != nil {
			for _, ps := range preparedShards {
				_ = submitWait(ps, Tx{Kind: TxCrossAbort, XID: xid})
			}
			return fmt.Errorf("chain: cross-shard prepare failed on %s: %w", s.Name, err)
		}
		preparedShards = append(preparedShards, s)
	}
	// Phase 2: commit everywhere.
	var firstErr error
	for s := range byShard {
		if err := submitWait(s, Tx{Kind: TxCrossCommit, XID: xid}); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("chain: cross-shard commit failed on %s: %w", s.Name, err)
		}
	}
	return firstErr
}
