package chain

import (
	"encoding/json"
	"fmt"

	"prever/internal/store"
)

// peerSnapshot is a Peer's durable image. The block chain is the source
// of truth: world state, private-collection hashes, prepared cross-shard
// writes, and the applied-transaction dedup set are all deterministic
// replays of it, so only the blocks are stored and everything else is
// rebuilt (and re-verified) on Restore.
type peerSnapshot struct {
	Format string  `json:"format"`
	Blocks []Block `json:"blocks"`
}

const peerSnapFormat = "prever/chain/peer/v1"

// Snapshot encodes the peer's chain for a consensus-layer snapshot
// (wal.Snapshotter). Private collection VALUES are not included: they
// live off-chain by design (only their hashes are chained) and must be
// redistributed by their writers after a disk recovery.
func (p *Peer) Snapshot() ([]byte, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return json.Marshal(peerSnapshot{Format: peerSnapFormat, Blocks: p.blocks})
}

// Restore replaces the peer's state with a snapshot: the chain is
// re-verified (hash links, transaction roots) and every block is
// re-applied, rebuilding world state, prepared cross-shard writes, and
// the exactly-once dedup set. A corrupt or tampered snapshot is rejected
// before any state changes.
func (p *Peer) Restore(data []byte) error {
	var snap peerSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return fmt.Errorf("chain: decoding peer snapshot: %w", err)
	}
	if snap.Format != peerSnapFormat {
		return fmt.Errorf("chain: unknown peer snapshot format %q", snap.Format)
	}
	if bad, err := VerifyBlocks(snap.Blocks); err != nil {
		return fmt.Errorf("chain: snapshot chain invalid at block %d: %w", bad, err)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.blocks = append([]Block(nil), snap.Blocks...)
	p.state = store.NewKV()
	for coll := range p.private {
		p.private[coll] = store.NewKV()
	}
	p.pendingP = make(map[string][]byte)
	p.prepared = make(map[string][]Tx)
	p.appliedTx = make(map[string]bool)
	for i := range p.blocks {
		for _, tx := range p.blocks[i].Txs {
			if tx.ID != "" {
				p.appliedTx[tx.ID] = true
			}
			p.applyTxLocked(tx)
		}
	}
	return nil
}
