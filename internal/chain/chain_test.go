package chain

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"prever/internal/leaktest"
	"prever/internal/netsim"
	"prever/internal/store"
)

func newShard(t testing.TB, name string, collections map[string][]string) (*netsim.Network, *Shard) {
	t.Helper()
	// Registered before the Close cleanups so (LIFO) it verifies after
	// the shard and network have shut down. Close is idempotent, so
	// tests that close explicitly are fine.
	t.Cleanup(leaktest.Check(t))
	net := netsim.New(netsim.Config{})
	t.Cleanup(net.Close)
	s, err := NewShard(net, ShardConfig{
		Name:        name,
		F:           1,
		Collections: collections,
		Timeout:     5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	return net, s
}

// waitHeight waits for every peer to reach at least h blocks.
func waitHeight(t *testing.T, s *Shard, h int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for _, p := range s.Peers() {
		for time.Now().Before(deadline) && p.Height() < h {
			time.Sleep(time.Millisecond)
		}
		if p.Height() < h {
			t.Fatalf("peer %s height %d < %d", p.ID(), p.Height(), h)
		}
	}
}

func TestShardConfigValidation(t *testing.T) {
	net := netsim.New(netsim.Config{})
	defer net.Close()
	if _, err := NewShard(net, ShardConfig{Name: "s", F: 0}); err == nil {
		t.Fatal("f=0 accepted")
	}
}

func TestPutCommitsOnAllPeers(t *testing.T) {
	_, s := newShard(t, "s0", nil)
	if err := submitWait(s, Tx{Kind: TxPut, Key: "a", Value: []byte("1")}); err != nil {
		t.Fatal(err)
	}
	waitHeight(t, s, 1)
	for _, p := range s.Peers() {
		v, err := p.Get("a")
		if err != nil || string(v) != "1" {
			t.Fatalf("peer %s: a = %q, %v", p.ID(), v, err)
		}
	}
}

func TestDeleteTx(t *testing.T) {
	_, s := newShard(t, "s0", nil)
	_ = submitWait(s, Tx{Kind: TxPut, Key: "a", Value: []byte("1")})
	_ = submitWait(s, Tx{Kind: TxDelete, Key: "a"})
	waitHeight(t, s, 2)
	for _, p := range s.Peers() {
		if _, err := p.Get("a"); err != store.ErrNotFound {
			t.Fatalf("peer %s still has deleted key: %v", p.ID(), err)
		}
	}
}

func TestChainsAreIdenticalAcrossPeers(t *testing.T) {
	_, s := newShard(t, "s0", nil)
	for i := 0; i < 10; i++ {
		if err := submitWait(s, Tx{Kind: TxPut, Key: fmt.Sprintf("k%d", i), Value: []byte("v")}); err != nil {
			t.Fatal(err)
		}
	}
	waitHeight(t, s, 10)
	ref := s.Peers()[0].Blocks()
	for _, p := range s.Peers()[1:] {
		blocks := p.Blocks()
		if len(blocks) != len(ref) {
			t.Fatalf("peer %s has %d blocks, ref %d", p.ID(), len(blocks), len(ref))
		}
		for i := range ref {
			if blocks[i].Hash != ref[i].Hash {
				t.Fatalf("peer %s block %d hash differs", p.ID(), i)
			}
		}
	}
}

func TestVerifyBlocksCleanAndTampered(t *testing.T) {
	_, s := newShard(t, "s0", nil)
	for i := 0; i < 5; i++ {
		_ = submitWait(s, Tx{Kind: TxPut, Key: fmt.Sprintf("k%d", i), Value: []byte("v")})
	}
	waitHeight(t, s, 5)
	blocks := s.Peers()[0].Blocks()
	if bad, err := VerifyBlocks(blocks); bad != -1 {
		t.Fatalf("clean chain failed verification at %d: %v", bad, err)
	}
	// Tamper with a transaction value.
	blocks[2].Txs[0].Value = []byte("rewritten")
	if bad, _ := VerifyBlocks(blocks); bad != 2 {
		t.Fatalf("tampered block not detected: bad = %d", bad)
	}
	// Rewriting the root breaks the block hash; rewriting both breaks the
	// chain link.
	blocks[2].TxRoot = txRoot(blocks[2].Txs)
	if bad, _ := VerifyBlocks(blocks); bad != 2 {
		t.Fatal("root-fixed tamper not detected")
	}
	blocks[2].Hash = blockHash(&blocks[2])
	if bad, _ := VerifyBlocks(blocks); bad != 3 {
		t.Fatal("fully-relinked tamper not detected at the next block")
	}
}

func TestTxInclusionProof(t *testing.T) {
	_, s := newShard(t, "s0", nil)
	_ = submitWait(s, Tx{Kind: TxPut, Key: "k", Value: []byte("v")})
	waitHeight(t, s, 1)
	p := s.Peers()[0]
	proof, tx, err := p.ProveTx(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	blk := p.Blocks()[0]
	if err := VerifyTxProof(proof, tx, blk); err != nil {
		t.Fatalf("tx proof failed: %v", err)
	}
	tx.Value = []byte("forged")
	if err := VerifyTxProof(proof, tx, blk); err == nil {
		t.Fatal("forged tx proof verified")
	}
	if _, _, err := p.ProveTx(99, 0); err == nil {
		t.Fatal("out-of-range height accepted")
	}
	if _, _, err := p.ProveTx(0, 99); err == nil {
		t.Fatal("out-of-range tx index accepted")
	}
}

func TestPrivateCollectionVisibility(t *testing.T) {
	members := map[string][]string{
		"collAB": {"s0/peer0", "s0/peer1"},
	}
	_, s := newShard(t, "s0", members)
	secret := []byte("manufacturing-process-secret")
	if err := (<-s.SubmitPrivate("collAB", "recipe", secret)).Err; err != nil {
		t.Fatal(err)
	}
	waitHeight(t, s, 1)
	peers := s.Peers()
	// Members see the value.
	for _, p := range peers[:2] {
		v, err := p.GetPrivate("collAB", "recipe")
		if err != nil || !bytes.Equal(v, secret) {
			t.Fatalf("member %s: %q, %v", p.ID(), v, err)
		}
	}
	// Non-members cannot read it.
	for _, p := range peers[2:] {
		if _, err := p.GetPrivate("collAB", "recipe"); err == nil {
			t.Fatalf("non-member %s read private data", p.ID())
		}
	}
	// Everyone sees the on-chain hash and it matches.
	wantHash := HashValue(secret)
	for _, p := range peers {
		h, err := p.Get("hash/collAB/recipe")
		if err != nil || !bytes.Equal(h, wantHash[:]) {
			t.Fatalf("peer %s on-chain hash mismatch: %v", p.ID(), err)
		}
	}
}

func TestPrivateValueWithWrongHashRejected(t *testing.T) {
	members := map[string][]string{"coll": {"s0/peer0"}}
	_, s := newShard(t, "s0", members)
	// Stage a value that does not match the on-chain hash.
	tx := Tx{ID: "evil-tx", Kind: TxPrivatePut, Collection: "coll", Key: "k", ValueHash: HashValue([]byte("real"))}
	s.Peers()[0].StagePrivateValue("evil-tx", []byte("fake"))
	if err := submitWait(s, tx); err != nil {
		t.Fatal(err)
	}
	waitHeight(t, s, 1)
	if _, err := s.Peers()[0].GetPrivate("coll", "k"); err == nil {
		t.Fatal("hash-mismatched private value stored")
	}
}

func newSharded(t *testing.T, nShards int) *Sharded {
	t.Helper()
	t.Cleanup(leaktest.Check(t))
	net := netsim.New(netsim.Config{})
	t.Cleanup(net.Close)
	var shards []*Shard
	for i := 0; i < nShards; i++ {
		s, err := NewShard(net, ShardConfig{Name: fmt.Sprintf("sh%d", i), F: 1, Timeout: 5 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		shards = append(shards, s)
	}
	c, err := NewSharded(shards...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c
}

func TestShardedRouting(t *testing.T) {
	c := newSharded(t, 2)
	if err := (<-c.SubmitAsync(Tx{Kind: TxPut, Key: "alpha", Value: []byte("1")})).Err; err != nil {
		t.Fatal(err)
	}
	home := c.ShardFor("alpha")
	deadline := time.Now().Add(5 * time.Second)
	p := home.Peers()[0]
	for time.Now().Before(deadline) && p.Height() == 0 {
		time.Sleep(time.Millisecond)
	}
	if v, err := p.Get("alpha"); err != nil || string(v) != "1" {
		t.Fatalf("home shard read: %q, %v", v, err)
	}
	// Routing must be deterministic.
	if c.ShardFor("alpha") != home {
		t.Fatal("routing not deterministic")
	}
}

func TestCrossShardAtomicWrites(t *testing.T) {
	c := newSharded(t, 2)
	// Find two keys living on different shards.
	var k0, k1 string
	for i := 0; ; i++ {
		k := fmt.Sprintf("key-%d", i)
		if c.ShardFor(k) == c.Shards()[0] && k0 == "" {
			k0 = k
		}
		if c.ShardFor(k) == c.Shards()[1] && k1 == "" {
			k1 = k
		}
		if k0 != "" && k1 != "" {
			break
		}
	}
	writes := []Tx{
		{Kind: TxPut, Key: k0, Value: []byte("left")},
		{Kind: TxPut, Key: k1, Value: []byte("right")},
	}
	if err := c.SubmitCross(writes); err != nil {
		t.Fatal(err)
	}
	check := func(s *Shard, key, want string) {
		deadline := time.Now().Add(5 * time.Second)
		p := s.Peers()[0]
		for time.Now().Before(deadline) {
			if v, err := p.Get(key); err == nil && string(v) == want {
				return
			}
			time.Sleep(time.Millisecond)
		}
		t.Fatalf("key %s never committed on its shard", key)
	}
	check(c.Shards()[0], k0, "left")
	check(c.Shards()[1], k1, "right")
}

func TestCrossShardEmptyIsNoop(t *testing.T) {
	c := newSharded(t, 2)
	if err := c.SubmitCross(nil); err != nil {
		t.Fatal(err)
	}
}

func TestNewShardedValidation(t *testing.T) {
	if _, err := NewSharded(); err == nil {
		t.Fatal("empty shard list accepted")
	}
}

func BenchmarkShardSubmit(b *testing.B) {
	net := netsim.New(netsim.Config{})
	defer net.Close()
	s, err := NewShard(net, ShardConfig{Name: "bench", F: 1, Timeout: 10 * time.Second})
	if err != nil {
		b.Fatal(err)
	}
	val := []byte("value-64-bytes-xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := submitWait(s, Tx{Kind: TxPut, Key: fmt.Sprintf("k%d", i), Value: val}); err != nil {
			b.Fatal(err)
		}
	}
}
