package prever_test

import (
	"fmt"
	"log"
	"time"

	"prever"
)

// ExampleNewPlainManager shows the Figure-2 pipeline: define a regulation,
// submit updates, watch the constraint bite, audit the ledger.
func ExampleNewPlainManager() {
	tasks, err := prever.NewTable("tasks",
		prever.Column{Name: "worker", Kind: prever.KindString},
		prever.Column{Name: "hours", Kind: prever.KindInt},
		prever.Column{Name: "ts", Kind: prever.KindTime},
	)
	if err != nil {
		log.Fatal(err)
	}
	flsa, err := prever.NewConstraint("flsa",
		"SUM(tasks.hours WHERE tasks.worker = u.worker WITHIN 168 HOURS OF u.ts) + u.hours <= 40",
		prever.Regulation, prever.Public, "dol")
	if err != nil {
		log.Fatal(err)
	}
	m := prever.NewPlainManager("example")
	m.AddTable(tasks)
	m.AddConstraint(flsa)

	base := time.Date(2022, 3, 28, 9, 0, 0, 0, time.UTC)
	for i, hours := range []int64{30, 10, 1} {
		r, err := m.Submit(prever.Update{
			ID: fmt.Sprintf("t%d", i), Table: "tasks", Key: fmt.Sprintf("t%d", i),
			Row: prever.Row{
				"worker": prever.Str("w1"),
				"hours":  prever.Int(hours),
				"ts":     prever.Time(base),
			},
			TS: base,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%2dh accepted=%v\n", hours, r.Accepted)
	}
	rep := prever.AuditLedger(m.Ledger().Export(), m.Ledger().Digest())
	fmt.Println("audit clean =", rep.Clean())
	// Output:
	// 30h accepted=true
	// 10h accepted=true
	//  1h accepted=false
	// audit clean = true
}

// ExampleNewZKBoundManagerWithGroup shows the proof-carrying RC1 engine:
// the owner proves its running total stays within a public bound; the
// untrusted manager verifies without seeing any value.
func ExampleNewZKBoundManagerWithGroup() {
	setup, err := prever.NewZKBoundManagerWithGroup("cap", 100, prever.TestGroup())
	if err != nil {
		log.Fatal(err)
	}
	for i, v := range []int64{60, 40} {
		u, err := setup.Owner.ProduceUpdate(fmt.Sprintf("u%d", i), "org", "org", v)
		if err != nil {
			log.Fatal(err)
		}
		r, err := setup.Manager.SubmitZK(u)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("+%d accepted=%v\n", v, r.Accepted)
	}
	// One more unit would exceed the cap; the owner cannot even produce
	// the proof.
	if _, err := setup.Owner.ProduceUpdate("u2", "org", "org", 1); err != nil {
		fmt.Println("owner refuses the 101st unit")
	}
	// Output:
	// +60 accepted=true
	// +40 accepted=true
	// owner refuses the 101st unit
}

// ExampleNewMPCFederation shows federated enforcement without any shared
// plaintext: three platforms jointly check a 40-unit cap.
func ExampleNewMPCFederation() {
	fed, err := prever.NewMPCFederation("cap", 40, 0, []string{"a", "b", "c"}, 256)
	if err != nil {
		log.Fatal(err)
	}
	now := time.Date(2022, 3, 28, 0, 0, 0, 0, time.UTC)
	for i, task := range []struct {
		platform string
		units    int64
	}{{"a", 20}, {"b", 20}, {"c", 1}} {
		r, err := fed.SubmitTask(prever.TaskSubmission{
			ID: fmt.Sprintf("t%d", i), Worker: "w", Platform: task.platform,
			Hours: task.units, TS: now,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s +%d accepted=%v\n", task.platform, task.units, r.Accepted)
	}
	// Output:
	// a +20 accepted=true
	// b +20 accepted=true
	// c +1 accepted=false
}

// ExampleParseConstraint shows the constraint language round trip.
func ExampleParseConstraint() {
	e, err := prever.ParseConstraint("u.hours BETWEEN 0 AND 24 AND u.platform IN ('uber', 'lyft')")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(e)
	// Output:
	// ((u.hours BETWEEN 0 AND 24) AND (u.platform IN ('uber', 'lyft')))
}

// ExamplePlainManager_Query shows constraint-language queries with `r`
// bound to each row.
func ExamplePlainManager_Query() {
	tasks, _ := prever.NewTable("tasks",
		prever.Column{Name: "worker", Kind: prever.KindString},
		prever.Column{Name: "hours", Kind: prever.KindInt},
		prever.Column{Name: "ts", Kind: prever.KindTime},
	)
	m := prever.NewPlainManager("q")
	m.AddTable(tasks)
	now := time.Date(2022, 3, 28, 0, 0, 0, 0, time.UTC)
	for i, h := range []int64{3, 12, 7} {
		m.Submit(prever.Update{
			ID: fmt.Sprintf("t%d", i), Table: "tasks", Key: fmt.Sprintf("t%d", i),
			Row: prever.Row{"worker": prever.Str("w"), "hours": prever.Int(h), "ts": prever.Time(now)},
			TS:  now,
		})
	}
	rows, err := m.Query("tasks", "r.hours > 5")
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range rows {
		fmt.Println(r.Key, r.Row["hours"].I)
	}
	// Output:
	// t1 12
	// t2 7
}
